"""Layer 1: the semantic automaton linter.

The paper's constructions (Sections 2-3) are stated over *well-formed*
I/O automata.  This module turns the well-formedness conditions into
executable checks over a bounded reachable-state exploration (reusing
:func:`repro.ioa.determinism.explore_reachable`) and reports violations
as :class:`~repro.lint.findings.Finding` objects anchored at the
automaton class's source location:

==========  =============================================================
REPROC01    signature overlap — an action classified as more than one of
            input/output/internal (Section 2.1 requires disjointness)
REPROC02    input-enabledness — an input action disabled, or ``apply``
            raising on it, in some reachable state
REPROC03    task partition — ``task_of`` escaping ``tasks()``, an enabled
            locally-controlled action covered by no task while tasks are
            declared, or a declared task with no action anywhere in a
            completely explored state space
REPROC04    ``apply`` impurity — the input state mutated (deep-copy
            diffing over sampled transitions) or an unhashable result
REPROC05    task determinism — a task with two enabled actions in one
            reachable state (Section 2.5)
REPROC06    spec picklability — a spec-like frozen object
            (``ExperimentSpec``, ``FaultPlan``) failing a pickle
            round-trip
==========  =============================================================

Discovery: :func:`default_contract_subjects` enumerates every registered
detector family via
:func:`repro.detectors.registry.iter_registered_automata`, the core
system automata (channels, crash, environment), and one process
automaton per consensus/broadcast algorithm factory in
:mod:`repro.algorithms` — so a new detector or algorithm is checked the
moment it is registered, with no hand-maintained list.  Every detector
(and the channel automaton) is additionally checked as a *compiled
twin* — the same probes driven through the
:mod:`repro.compiled` core's interned apply thunks
(:func:`repro.detectors.registry.instantiate_compiled_for_lint` builds
one twin on demand) — so a divergence between the interpreted and
compiled execution surfaces shows up as a REPROC02/REPROC04 finding.
Explicitly imported automata can be checked directly with
:func:`check_automaton_contract`.
"""

from __future__ import annotations

import copy
import inspect
import pickle
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton
from repro.ioa.determinism import (
    explore_reachable,
    violations_of_task_determinism,
)
from repro.lint.findings import Finding

#: Default bound on the reachable-state exploration per subject.
DEFAULT_MAX_STATES = 300

#: Cap on (state, action) pairs sampled for the apply-purity check.
DEFAULT_PURITY_SAMPLES = 200


def _source_anchor(obj: Any) -> Tuple[str, int]:
    """``(path, line)`` of an object's defining class, best effort."""
    import os

    cls = obj if inspect.isclass(obj) else type(obj)
    try:
        path = inspect.getsourcefile(cls) or "<unknown>"
        _, line = inspect.getsourcelines(cls)
    except (OSError, TypeError):
        return f"<{cls.__name__}>", 1
    try:
        rel = os.path.relpath(path)
        if not rel.startswith(".."):
            path = rel.replace(os.sep, "/")
    except ValueError:
        pass
    return path, line


def _finding(subject_name: str, obj: Any, code: str, message: str) -> Finding:
    path, line = _source_anchor(obj)
    return Finding(
        path=path,
        line=line,
        col=1,
        code=code,
        message=f"[{subject_name}] {message}",
    )


@dataclass
class ContractSubject:
    """One automaton to check, with the probes that exercise it."""

    name: str
    automaton: Automaton
    #: Input actions fed to the exploration and the input-enabledness
    #: probe (beyond the finite-enumerable parts of the signature).
    extra_inputs: Tuple[Action, ...] = ()
    max_states: int = DEFAULT_MAX_STATES
    #: Task determinism is part of the paper's determinism definition
    #: but not every process automaton is required to satisfy it; the
    #: registered detectors and core system automata are.
    require_task_determinism: bool = True


@dataclass
class ContractReport:
    """The outcome of one contract-lint pass."""

    findings: List[Finding] = field(default_factory=list)
    subjects_checked: int = 0
    truncated_subjects: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


# ---------------------------------------------------------------------------
# Probes
# ---------------------------------------------------------------------------


def enumerable_inputs(automaton: Automaton, limit: int = 64) -> List[Action]:
    """Input actions from the finite-enumerable parts of the signature."""
    sig = automaton.signature
    probes: List[Action] = []
    stack = [sig.inputs]
    while stack:
        part = stack.pop()
        parts = getattr(part, "parts", None)
        if parts is not None:
            stack.extend(parts)
            continue
        if part.is_finite():
            for action in part.enumerate():
                probes.append(action)
                if len(probes) >= limit:
                    return probes
    return probes


def probe_inputs(
    automaton: Automaton, extra_inputs: Iterable[Action] = ()
) -> List[Action]:
    """Deduplicated input probes: finite signature parts + extras that
    the signature actually classifies as inputs."""
    probes = enumerable_inputs(automaton)
    sig = automaton.signature
    for action in extra_inputs:
        if sig.is_input(action):
            probes.append(action)
    unique: List[Action] = []
    seen = set()
    for action in probes:
        if action not in seen:
            seen.add(action)
            unique.append(action)
    return unique


# ---------------------------------------------------------------------------
# The checks
# ---------------------------------------------------------------------------


def check_automaton_contract(
    automaton: Automaton,
    name: Optional[str] = None,
    extra_inputs: Iterable[Action] = (),
    max_states: int = DEFAULT_MAX_STATES,
    require_task_determinism: bool = True,
) -> ContractReport:
    """Run every automaton-level contract check on one automaton."""
    subject = name or automaton.name or type(automaton).__name__
    report = ContractReport(subjects_checked=1)
    probes = probe_inputs(automaton, extra_inputs)

    try:
        reach = explore_reachable(
            automaton, max_states=max_states, extra_inputs=probes
        )
    except Exception as exc:  # a broken automaton must not kill the lint
        report.findings.append(
            _finding(
                subject,
                automaton,
                "REPROC02",
                f"state exploration crashed: {exc!r}",
            )
        )
        return report
    if reach.truncated:
        report.truncated_subjects.append(subject)

    _check_signature_disjointness(subject, automaton, reach.states, probes, report)
    _check_input_enabledness(subject, automaton, reach.states, probes, report)
    _check_task_partition(subject, automaton, reach, report)
    _check_apply_purity(subject, automaton, reach.states, probes, report)
    if require_task_determinism:
        _check_task_determinism(subject, automaton, max_states, probes, report)
    return report


def _observed_actions(
    automaton: Automaton, states: Sequence[Any], probes: Sequence[Action]
) -> List[Tuple[Any, Action]]:
    pairs: List[Tuple[Any, Action]] = []
    for state in states:
        for action in automaton.enabled_locally(state):
            pairs.append((state, action))
        for action in probes:
            pairs.append((state, action))
    return pairs


def _check_signature_disjointness(subject, automaton, states, probes, report):
    sig = automaton.signature
    seen = set()
    candidates: List[Action] = list(probes)
    for state in states:
        candidates.extend(automaton.enabled_locally(state))
    for action in candidates:
        if action in seen:
            continue
        seen.add(action)
        classes = [
            kind
            for kind, member in (
                ("input", sig.is_input(action)),
                ("output", sig.is_output(action)),
                ("internal", sig.is_internal(action)),
            )
            if member
        ]
        if len(classes) > 1:
            report.findings.append(
                _finding(
                    subject,
                    automaton,
                    "REPROC01",
                    f"action {action} is classified as "
                    f"{' and '.join(classes)}; the signature sets must be "
                    "disjoint (Section 2.1)",
                )
            )


def _check_input_enabledness(subject, automaton, states, probes, report):
    for action in probes:
        for state in states:
            try:
                if not automaton.enabled(state, action):
                    report.findings.append(
                        _finding(
                            subject,
                            automaton,
                            "REPROC02",
                            f"input action {action} reported disabled in "
                            f"reachable state {state!r}; input actions "
                            "must be enabled everywhere (Section 2.1)",
                        )
                    )
                    break
                automaton.apply(state, action)
            except Exception as exc:
                report.findings.append(
                    _finding(
                        subject,
                        automaton,
                        "REPROC02",
                        f"apply({state!r}, {action}) raised {exc!r}; "
                        "input actions must be accepted in every state",
                    )
                )
                break


def _check_task_partition(subject, automaton, reach, report):
    try:
        declared = tuple(automaton.tasks())
    except Exception as exc:
        report.findings.append(
            _finding(
                subject, automaton, "REPROC03", f"tasks() raised {exc!r}"
            )
        )
        return
    observed_tasks = set()
    any_action = False
    for state in reach.states:
        for action in automaton.enabled_locally(state):
            any_action = True
            try:
                task = automaton.task_of(action)
            except Exception as exc:
                report.findings.append(
                    _finding(
                        subject,
                        automaton,
                        "REPROC03",
                        f"task_of({action}) raised {exc!r}",
                    )
                )
                return
            if task is None:
                if declared:
                    report.findings.append(
                        _finding(
                            subject,
                            automaton,
                            "REPROC03",
                            f"locally controlled action {action} belongs "
                            "to no task although tasks "
                            f"{list(declared)} are declared; the tasks "
                            "must cover the locally controlled actions",
                        )
                    )
                    return
            elif task not in declared:
                report.findings.append(
                    _finding(
                        subject,
                        automaton,
                        "REPROC03",
                        f"task_of({action}) = {task!r} is not among the "
                        f"declared tasks {list(declared)}",
                    )
                )
                return
            else:
                observed_tasks.add(task)
    # A declared task no action maps to is only reportable when the
    # exploration saw the complete state space *and* actually observed
    # locally controlled behaviour (otherwise the probes were too weak
    # to judge).
    if not reach.truncated and any_action:
        for task in declared:
            if task not in observed_tasks:
                report.findings.append(
                    _finding(
                        subject,
                        automaton,
                        "REPROC03",
                        f"declared task {task!r} has no enabled action in "
                        "any reachable state; every task must cover some "
                        "locally controlled action",
                    )
                )


def _check_apply_purity(subject, automaton, states, probes, report):
    sampled = 0
    for state, action in _observed_actions(automaton, states, probes):
        if sampled >= DEFAULT_PURITY_SAMPLES:
            break
        if not automaton.enabled(state, action):
            continue
        sampled += 1
        before = copy.deepcopy(state)
        try:
            result = automaton.apply(state, action)
        except Exception:
            continue  # raises are REPROC02's business
        try:
            if state != before:
                report.findings.append(
                    _finding(
                        subject,
                        automaton,
                        "REPROC04",
                        f"apply({before!r}, {action}) mutated its input "
                        "state; transitions must be pure functions",
                    )
                )
                return
        except Exception:
            pass  # states without __eq__ cannot be diffed
        try:
            hash(result)
        except TypeError:
            report.findings.append(
                _finding(
                    subject,
                    automaton,
                    "REPROC04",
                    f"apply({before!r}, {action}) returned an unhashable "
                    f"state {result!r}; states must be immutable, "
                    "hashable values",
                )
            )
            return


def _check_task_determinism(subject, automaton, max_states, probes, report):
    try:
        violations = violations_of_task_determinism(
            automaton, max_states=max_states, extra_inputs=probes
        )
    except Exception as exc:
        report.findings.append(
            _finding(
                subject,
                automaton,
                "REPROC05",
                f"task-determinism check crashed: {exc!r}",
            )
        )
        return
    if violations:
        state, task, enabled = violations[0]
        report.findings.append(
            _finding(
                subject,
                automaton,
                "REPROC05",
                f"task {task!r} has {len(enabled)} enabled actions "
                f"({', '.join(map(str, enabled))}) in reachable state "
                f"{state!r}; tasks must be deterministic (Section 2.5)",
            )
        )


# ---------------------------------------------------------------------------
# Spec-object picklability (REPROC06)
# ---------------------------------------------------------------------------


def check_picklable(obj: Any, name: str) -> List[Finding]:
    """A pickle round-trip check for spec-like frozen objects."""
    try:
        clone = pickle.loads(pickle.dumps(obj))
    except Exception as exc:
        return [
            _finding(
                name,
                obj,
                "REPROC06",
                f"pickle round-trip failed: {exc!r}; spec objects must "
                "ship to multiprocessing workers unchanged",
            )
        ]
    try:
        if clone != obj:
            return [
                _finding(
                    name,
                    obj,
                    "REPROC06",
                    "pickle round-trip did not compare equal; spec "
                    "objects must be plain values",
                )
            ]
    except Exception:
        pass
    return []


def default_spec_subjects() -> List[Tuple[str, Any]]:
    """Representative instances of every spec-like frozen type."""
    from repro.algorithms.consensus_omega import omega_consensus_algorithm
    from repro.faults.plan import ChannelFaults, CrashRule, FaultPlan
    from repro.runner.spec import ExperimentSpec

    spec = ExperimentSpec(
        algorithm=omega_consensus_algorithm,
        detector="omega",
        locations=(0, 1, 2),
        crashes={0: 10},
        f=1,
        seed=7,
    )
    plan = FaultPlan(
        default=ChannelFaults(drop_p=0.25, duplicate_p=0.1),
        crash_rules=(
            CrashRule(trigger="on-first-fd-output", delay=2),
        ),
    )
    return [
        ("ExperimentSpec", spec),
        ("FaultPlan(unbound)", plan),
        ("FaultPlan(bound)", plan.bound(123)),
        ("ChannelFaults", ChannelFaults(reorder_p=0.5)),
    ]


# ---------------------------------------------------------------------------
# Discovery
# ---------------------------------------------------------------------------


def default_contract_subjects(
    locations: Sequence[int] = (0, 1, 2),
) -> List[ContractSubject]:
    """Every automaton the default contract pass checks."""
    from repro.detectors.registry import iter_registered_automata
    from repro.system.channel import ChannelAutomaton, send_action
    from repro.system.crash import CrashAutomaton
    from repro.system.environment import (
        ConsensusEnvironmentLocation,
        propose_action,
    )
    from repro.system.fault_pattern import crash_action

    from repro.compiled.tables import compile_automaton

    locs = tuple(locations)
    crash_probes = tuple(crash_action(i) for i in locs)
    subjects: List[ContractSubject] = []

    for name, _afd, automaton in iter_registered_automata(locs):
        subjects.append(
            ContractSubject(
                name=f"detector:{name}",
                automaton=automaton,
                extra_inputs=crash_probes,
            )
        )
        # The compiled twin: the same contract probes run against the
        # compiled core's interned apply thunks (REPROC02/REPROC04 catch
        # any divergence between the two execution surfaces).
        subjects.append(
            ContractSubject(
                name=f"compiled:detector:{name}",
                automaton=compile_automaton(automaton),
                extra_inputs=crash_probes,
            )
        )

    # The timed implementations (and their compiled twins): unbounded
    # state spaces (virtual time never closes), so the walk truncates at
    # a channel-automaton-sized budget — the contract pass is about
    # well-formedness near the initial state, not reachability.
    from repro.timed.registry import iter_timed_automata

    for name, automaton in iter_timed_automata(locs):
        subjects.append(
            ContractSubject(
                name=f"timed:{name}",
                automaton=automaton,
                extra_inputs=crash_probes,
                max_states=64,
            )
        )
        subjects.append(
            ContractSubject(
                name=f"compiled:timed:{name}",
                automaton=compile_automaton(automaton),
                extra_inputs=crash_probes,
                max_states=64,
            )
        )

    subjects.append(
        ContractSubject(
            name="system:ChannelAutomaton",
            automaton=ChannelAutomaton(0, 1),
            extra_inputs=(
                send_action(0, "m1", 1),
                send_action(0, "m2", 1),
            ),
            max_states=64,
        )
    )
    subjects.append(
        ContractSubject(
            name="compiled:system:ChannelAutomaton",
            automaton=compile_automaton(ChannelAutomaton(0, 1)),
            extra_inputs=(
                send_action(0, "m1", 1),
                send_action(0, "m2", 1),
            ),
            max_states=64,
        )
    )
    subjects.append(
        ContractSubject(
            name="system:CrashAutomaton",
            automaton=CrashAutomaton(locs),
        )
    )
    subjects.append(
        ContractSubject(
            name="system:ConsensusEnvironmentLocation",
            automaton=ConsensusEnvironmentLocation(0),
        )
    )

    # One process automaton per self-contained algorithm factory.  The
    # probes exercise the crash input and (where accepted) a proposal;
    # richer exploration happens in the simulation tests — the contract
    # pass is about well-formedness, not behaviour.
    from repro.algorithms.consensus_ct import ct_consensus_algorithm
    from repro.algorithms.consensus_omega import omega_consensus_algorithm
    from repro.algorithms.consensus_perfect import perfect_consensus_algorithm
    from repro.algorithms.consensus_tree import tree_consensus_algorithm
    from repro.algorithms.urb import urb_algorithm

    factories = (
        ("omega_consensus", omega_consensus_algorithm),
        ("perfect_consensus", perfect_consensus_algorithm),
        ("ct_consensus", ct_consensus_algorithm),
        ("tree_consensus", tree_consensus_algorithm),
        ("urb", urb_algorithm),
    )
    process_probes = crash_probes + (
        propose_action(locs[0], 0),
        propose_action(locs[0], 1),
    )
    for label, factory in factories:
        algorithm = factory(locs)
        subjects.append(
            ContractSubject(
                name=f"algorithm:{label}[{locs[0]}]",
                automaton=algorithm[locs[0]],
                extra_inputs=process_probes,
                max_states=200,
                require_task_determinism=False,
            )
        )
    return subjects


def run_contract_checks(
    subjects: Optional[Sequence[ContractSubject]] = None,
    include_spec_objects: bool = True,
) -> ContractReport:
    """The full layer-1 pass: automata contracts + spec picklability."""
    if subjects is None:
        subjects = default_contract_subjects()
    report = ContractReport()
    for subject in subjects:
        sub = check_automaton_contract(
            subject.automaton,
            name=subject.name,
            extra_inputs=subject.extra_inputs,
            max_states=subject.max_states,
            require_task_determinism=subject.require_task_determinism,
        )
        report.findings.extend(sub.findings)
        report.subjects_checked += sub.subjects_checked
        report.truncated_subjects.extend(sub.truncated_subjects)
    if include_spec_objects:
        for name, obj in default_spec_subjects():
            report.findings.extend(check_picklable(obj, name))
            report.subjects_checked += 1
    return report
