"""The committed lint baseline.

A baseline file (``lint_baseline.json`` at the repository root by
convention) records findings that predate the linter so CI can fail on
*new* findings while the backlog is paid down.  Matching is by finding
identity — ``(path, code, message)``, no line/column — so unrelated
edits that shift a baselined finding around its file do not resurface
it.  The intended workflow:

1. ``python -m repro.lint --write-baseline`` snapshots today's findings;
2. the baseline is committed, and every entry is justified (or queued
   for a fix) in ``docs/LINT.md``;
3. CI runs ``python -m repro.lint``; any finding not in the baseline
   fails the build;
4. fixes shrink the baseline via a fresh ``--write-baseline``.

A missing baseline file is an empty baseline.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Sequence, Set, Tuple

from repro.lint.findings import Finding

#: Schema identifier stamped into baseline files.
BASELINE_SCHEMA = "repro.lint-baseline/1"

#: Default baseline filename, resolved against the working directory.
DEFAULT_BASELINE = "lint_baseline.json"

Identity = Tuple[str, str, str]


class BaselineError(ValueError):
    """Raised for malformed baseline files."""


def load_baseline(path: str) -> Set[Identity]:
    """The identities recorded in ``path`` (empty when it is absent)."""
    try:
        with open(path, "r", encoding="utf-8") as fp:
            doc = json.load(fp)
    except FileNotFoundError:
        return set()
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"{path} is not a {BASELINE_SCHEMA} baseline file"
        )
    identities: Set[Identity] = set()
    for entry in doc.get("findings", []):
        try:
            identities.add(
                (str(entry["path"]), str(entry["code"]), str(entry["message"]))
            )
        except (TypeError, KeyError) as exc:
            raise BaselineError(
                f"{path}: malformed baseline entry {entry!r}"
            ) from exc
    return identities


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Snapshot ``findings`` into ``path``; returns the entry count."""
    entries = sorted(
        {f.identity() for f in findings}
    )
    doc = {
        "schema": BASELINE_SCHEMA,
        "findings": [
            {"path": p, "code": c, "message": m} for (p, c, m) in entries
        ],
    }
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(doc, fp, indent=2, sort_keys=True)
        fp.write("\n")
    return len(entries)


def split_by_baseline(
    findings: Sequence[Finding], baseline: Set[Identity]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into ``(new, baselined)``."""
    new: List[Finding] = []
    old: List[Finding] = []
    for f in findings:
        (old if f.identity() in baseline else new).append(f)
    return new, old
