"""``python -m repro.lint`` — the two-layer lint CLI.

Usage::

    python -m repro.lint [paths ...]
        [--select CODES] [--ignore CODES]
        [--format text|json]
        [--contract] [--contract-max-states N]
        [--baseline PATH] [--write-baseline]

* With no paths, lints ``src``, ``benchmarks`` and ``examples`` (those
  that exist under the working directory).
* ``--contract`` additionally runs the layer-1 semantic automaton
  checks (REPROC01-REPROC06) over every registered detector, the core
  system automata, the algorithm processes, and the spec objects.
* Exit codes: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.lint.baseline import (
    DEFAULT_BASELINE,
    BaselineError,
    write_baseline,
)
from repro.lint.engine import lint_paths
from repro.lint.findings import Finding

#: Paths linted when none are given.
DEFAULT_PATHS = ("src", "benchmarks", "examples")

USAGE_EXIT = 2


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [c.strip() for c in raw.split(",") if c.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static analysis for the repro harness: determinism "
            "invariants (REPRO001-REPRO005) and the I/O-automaton "
            "contract (REPROC01-REPROC06)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src benchmarks examples)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated codes to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated codes to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--contract",
        action="store_true",
        help="also run the semantic automaton contract checks",
    )
    parser.add_argument(
        "--contract-max-states",
        type=int,
        default=None,
        metavar="N",
        help="override the per-automaton reachable-state bound",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        metavar="PATH",
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline and exit 0",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; pass through.
        return int(exc.code or 0)

    paths = args.paths or [p for p in DEFAULT_PATHS if os.path.isdir(p)]
    if not paths:
        print(
            "error: no paths given and none of "
            f"{', '.join(DEFAULT_PATHS)} exist here",
            file=sys.stderr,
        )
        return USAGE_EXIT
    for path in args.paths:
        if not os.path.exists(path):
            print(f"error: no such path: {path}", file=sys.stderr)
            return USAGE_EXIT

    select = _split_codes(args.select)
    ignore = _split_codes(args.ignore)

    extra: List[Finding] = []
    if args.contract:
        from repro.lint.contract import (
            DEFAULT_MAX_STATES,
            default_contract_subjects,
            run_contract_checks,
        )

        subjects = default_contract_subjects()
        if args.contract_max_states is not None:
            if args.contract_max_states < 1:
                print(
                    "error: --contract-max-states must be >= 1",
                    file=sys.stderr,
                )
                return USAGE_EXIT
            for subject in subjects:
                if subject.max_states == DEFAULT_MAX_STATES:
                    subject.max_states = args.contract_max_states
        contract_report = run_contract_checks(subjects)
        extra.extend(contract_report.findings)

    try:
        result = lint_paths(
            paths,
            select=select,
            ignore=ignore,
            baseline_path=args.baseline,
            extra_findings=extra,
        )
    except (ValueError, BaselineError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return USAGE_EXIT

    if args.write_baseline:
        count = write_baseline(
            args.baseline, result.findings + result.baselined
        )
        print(f"wrote {count} finding(s) to {args.baseline}")
        return 0

    if args.format == "json":
        print(result.render_json())
    else:
        print(result.render_text())
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
