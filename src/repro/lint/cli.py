"""``python -m repro.lint`` — the three-layer lint CLI.

Usage::

    python -m repro.lint [paths ...]
        [--select CODES] [--ignore CODES]
        [--format text|json|github]
        [--contract] [--contract-max-states N] [--contract-cache PATH]
        [--baseline PATH] [--write-baseline]

* With no paths, lints ``src``, ``benchmarks`` and ``examples`` (those
  that exist under the working directory).
* The AST layer covers the per-file rules (REPRO001-REPRO005,
  REPRO007-REPRO008) plus the project-wide flow rules
  (REPRO006, REPRO009).
* ``--contract`` additionally runs the layer-1 semantic automaton
  checks (REPROC01-REPROC06) over every registered detector, the core
  system automata, the algorithm processes, and the spec objects.
  ``--contract-cache PATH`` memoises their findings keyed on a digest
  of the ``repro`` sources, so unchanged CI re-runs skip the
  bounded exploration.
* ``--format github`` renders findings as GitHub Actions ``::error``
  annotations.
* The resolved rule selection is echoed to stderr
  (``repro-lint: selected rules: ...``) so CI can assert a rule is
  actually active.
* Exit codes: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.lint.baseline import (
    DEFAULT_BASELINE,
    BaselineError,
    write_baseline,
)
from repro.lint.engine import lint_paths, select_rules
from repro.lint.findings import Finding

#: Paths linted when none are given.
DEFAULT_PATHS = ("src", "benchmarks", "examples")

USAGE_EXIT = 2

#: Schema tag of the ``--contract-cache`` file.
CONTRACT_CACHE_SCHEMA = "repro.lint-contract-cache/1"


def contract_cache_key(max_states: Optional[int]) -> str:
    """A digest that changes whenever the contract verdicts could.

    Hashes every ``repro`` source file (path + contents), the package
    version, and the effective state bound — the full input surface of
    the bounded exploration, which imports nothing outside ``repro``.
    """
    from repro import __version__

    digest = hashlib.sha256()
    digest.update(
        f"{CONTRACT_CACHE_SCHEMA}:{__version__}:{max_states}".encode()
    )
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    sources: List[str] = []
    for dirpath, dirnames, filenames in os.walk(package_root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in filenames:
            if name.endswith(".py"):
                sources.append(os.path.join(dirpath, name))
    for path in sorted(sources):
        rel = os.path.relpath(path, package_root).replace(os.sep, "/")
        digest.update(rel.encode())
        digest.update(b"\0")
        with open(path, "rb") as fp:
            digest.update(fp.read())
        digest.update(b"\0")
    return digest.hexdigest()


def load_contract_cache(path: str, key: str) -> Optional[List[Finding]]:
    """The cached contract findings, or ``None`` on miss/stale/corrupt."""
    try:
        with open(path, "r", encoding="utf-8") as fp:
            doc = json.load(fp)
    except (OSError, ValueError):
        return None
    if not isinstance(doc, dict) or doc.get("schema") != CONTRACT_CACHE_SCHEMA:
        return None
    if doc.get("key") != key:
        return None
    try:
        return [Finding(**entry) for entry in doc.get("findings", [])]
    except TypeError:
        return None


def write_contract_cache(
    path: str, key: str, findings: Sequence[Finding]
) -> None:
    doc = {
        "schema": CONTRACT_CACHE_SCHEMA,
        "key": key,
        "findings": [f.to_dict() for f in findings],
    }
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(doc, fp, indent=2, sort_keys=True)
        fp.write("\n")


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [c.strip() for c in raw.split(",") if c.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static analysis for the repro harness: determinism "
            "invariants (REPRO001-REPRO005) and the I/O-automaton "
            "contract (REPROC01-REPROC06)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src benchmarks examples)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated codes to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated codes to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (default: text; github = Actions annotations)",
    )
    parser.add_argument(
        "--contract",
        action="store_true",
        help="also run the semantic automaton contract checks",
    )
    parser.add_argument(
        "--contract-max-states",
        type=int,
        default=None,
        metavar="N",
        help="override the per-automaton reachable-state bound",
    )
    parser.add_argument(
        "--contract-cache",
        default=None,
        metavar="PATH",
        help=(
            "memoise contract findings in PATH, keyed on a digest of "
            "the repro sources (only meaningful with --contract)"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        metavar="PATH",
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline and exit 0",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; pass through.
        return int(exc.code or 0)

    paths = args.paths or [p for p in DEFAULT_PATHS if os.path.isdir(p)]
    if not paths:
        print(
            "error: no paths given and none of "
            f"{', '.join(DEFAULT_PATHS)} exist here",
            file=sys.stderr,
        )
        return USAGE_EXIT
    for path in args.paths:
        if not os.path.exists(path):
            print(f"error: no such path: {path}", file=sys.stderr)
            return USAGE_EXIT

    select = _split_codes(args.select)
    ignore = _split_codes(args.ignore)

    try:
        rules = select_rules(select, ignore)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return USAGE_EXIT
    print(
        "repro-lint: selected rules: "
        + ",".join(rule.code for rule in rules),
        file=sys.stderr,
    )

    extra: List[Finding] = []
    if args.contract:
        if args.contract_max_states is not None and args.contract_max_states < 1:
            print(
                "error: --contract-max-states must be >= 1",
                file=sys.stderr,
            )
            return USAGE_EXIT
        cached: Optional[List[Finding]] = None
        cache_key = ""
        if args.contract_cache:
            cache_key = contract_cache_key(args.contract_max_states)
            cached = load_contract_cache(args.contract_cache, cache_key)
        if cached is not None:
            print(
                f"repro-lint: contract cache hit ({args.contract_cache})",
                file=sys.stderr,
            )
            extra.extend(cached)
        else:
            from repro.lint.contract import (
                DEFAULT_MAX_STATES,
                default_contract_subjects,
                run_contract_checks,
            )

            subjects = default_contract_subjects()
            if args.contract_max_states is not None:
                for subject in subjects:
                    if subject.max_states == DEFAULT_MAX_STATES:
                        subject.max_states = args.contract_max_states
            contract_report = run_contract_checks(subjects)
            extra.extend(contract_report.findings)
            if args.contract_cache:
                write_contract_cache(
                    args.contract_cache, cache_key, contract_report.findings
                )
                print(
                    "repro-lint: contract cache written "
                    f"({args.contract_cache})",
                    file=sys.stderr,
                )

    try:
        result = lint_paths(
            paths,
            select=select,
            ignore=ignore,
            baseline_path=args.baseline,
            extra_findings=extra,
        )
    except (ValueError, BaselineError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return USAGE_EXIT

    if args.write_baseline:
        count = write_baseline(
            args.baseline, result.findings + result.baselined
        )
        print(f"wrote {count} finding(s) to {args.baseline}")
        return 0

    if args.format == "json":
        print(result.render_json())
    elif args.format == "github":
        print(result.render_github())
    else:
        print(result.render_text())
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
