"""The lint finding record and its text/JSON renderings.

Every layer of :mod:`repro.lint` — the AST rules, the semantic contract
checks, even parse failures — reports through one shape::

    path:line:col CODE message

``line``/``col`` are 1-based (col 1 == first column), matching compiler
convention so editors can jump to findings.  A finding's *identity*
deliberately excludes line and column: baselined findings stay matched
when unrelated edits shift them around a file (see
:mod:`repro.lint.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

#: Code assigned to files the linter cannot parse.
PARSE_ERROR_CODE = "REPRO900"


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, pointing at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    def identity(self) -> Tuple[str, str, str]:
        """The baseline-matching key: location-insensitive within a file."""
        return (self.path, self.code, self.message)


def finding_at(
    path: str, node: Any, code: str, message: str
) -> Finding:
    """A finding anchored at an AST node (1-based line, 1-based col)."""
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0) + 1
    return Finding(path=path, line=line, col=col, code=code, message=message)
