"""repro.lint: two-layer static analysis for the harness's contracts.

Layer 1 (:mod:`repro.lint.contract`) checks executable I/O automata
against the paper's well-formedness conditions — signature disjointness,
input-enabledness, task partitions, transition purity, task determinism
(Sections 2.1/2.5) — plus pickle round-trips for the spec-like frozen
objects the parallel engine ships to workers.

Layer 2 (:mod:`repro.lint.rules` / :mod:`repro.lint.engine`) lints the
source tree for the determinism conventions the reproducibility claims
rest on: no wall-clock reads, no unseeded randomness, no unordered
iteration into serialization sinks, no deprecated instrumentation
spellings, no mutable defaults in automaton constructors.

Run it: ``python -m repro.lint [paths] [--contract]``.  Rule catalog and
workflow: ``docs/LINT.md``.
"""

from repro.lint.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    write_baseline,
)
from repro.lint.contract import (
    ContractReport,
    ContractSubject,
    check_automaton_contract,
    check_picklable,
    default_contract_subjects,
    run_contract_checks,
)
from repro.lint.engine import (
    LintResult,
    collect_files,
    lint_file,
    lint_paths,
)
from repro.lint.findings import Finding
from repro.lint.rules import ALL_RULES, RULES_BY_CODE, rule_codes

__all__ = [
    "ALL_RULES",
    "ContractReport",
    "ContractSubject",
    "DEFAULT_BASELINE",
    "Finding",
    "LintResult",
    "RULES_BY_CODE",
    "check_automaton_contract",
    "check_picklable",
    "collect_files",
    "default_contract_subjects",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "rule_codes",
    "run_contract_checks",
    "write_baseline",
]
