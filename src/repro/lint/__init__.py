"""repro.lint: three-layer static analysis for the harness's contracts.

Layer 1 (:mod:`repro.lint.contract`) checks executable I/O automata
against the paper's well-formedness conditions — signature disjointness,
input-enabledness, task partitions, transition purity, task determinism
(Sections 2.1/2.5) — plus pickle round-trips for the spec-like frozen
objects the parallel engine ships to workers.

Layer 2 (:mod:`repro.lint.rules` / :mod:`repro.lint.engine`) lints the
source tree for the determinism conventions the reproducibility claims
rest on: no wall-clock reads, no unseeded randomness, no unordered
iteration into serialization sinks, no deprecated instrumentation
spellings, no mutable defaults in automaton constructors.

Layer 3 (:mod:`repro.lint.dataflow`) is flow-aware: fingerprint
completeness over the spec-identity dataclasses (REPRO006), write
hazards reachable from fork-pool worker entry points (REPRO007),
seed-derivation discipline (REPRO008), and registry/contract/facade
exhaustiveness (REPRO009).

Run it: ``python -m repro.lint [paths] [--contract]``.  Rule catalog and
workflow: ``docs/LINT.md``.
"""

from repro.lint.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    write_baseline,
)
from repro.lint.contract import (
    ContractReport,
    ContractSubject,
    check_automaton_contract,
    check_picklable,
    default_contract_subjects,
    run_contract_checks,
)
from repro.lint.dataflow import (
    FINGERPRINT_EXEMPT,
    FieldPartition,
    ProjectIndex,
    check_registry_exhaustiveness,
    fingerprint_partition,
    worker_entry_points,
    worker_state_writes,
)
from repro.lint.engine import (
    LintResult,
    collect_files,
    lint_file,
    lint_paths,
)
from repro.lint.findings import Finding
from repro.lint.rules import ALL_RULES, RULES_BY_CODE, rule_codes

__all__ = [
    "ALL_RULES",
    "ContractReport",
    "ContractSubject",
    "DEFAULT_BASELINE",
    "FINGERPRINT_EXEMPT",
    "FieldPartition",
    "Finding",
    "LintResult",
    "ProjectIndex",
    "RULES_BY_CODE",
    "check_automaton_contract",
    "check_picklable",
    "check_registry_exhaustiveness",
    "collect_files",
    "default_contract_subjects",
    "fingerprint_partition",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "rule_codes",
    "run_contract_checks",
    "worker_entry_points",
    "worker_state_writes",
    "write_baseline",
]
