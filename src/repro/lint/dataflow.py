"""Layer 3: project-wide flow analyses behind REPRO006-REPRO009.

The AST rules (layer 2) judge one module at a time; the contract checks
(layer 1) judge live automata.  This module holds the machinery for the
*flow-aware* rules that need to see several modules at once, or the
live registries, to say anything useful:

* :class:`ProjectIndex` — every parsed module of one lint run, with
  classes and module-level functions indexed by name;
* :func:`fingerprint_partition` — the static field-consumption analysis
  behind REPRO006: which dataclass fields of the spec-identity types
  (``ExperimentSpec``, ``TimedParams``, ``FaultPlan``, ...) are
  transitively consumed by their fingerprint sinks (``meta()`` /
  ``summary()`` / the run ledger's ``spec_fingerprint``), and which are
  exempted on purpose;
* :func:`worker_entry_points` / :func:`worker_state_writes` — the
  per-module call-graph analysis behind REPRO007: functions handed to a
  fork-pool fan-out (``parallel_map``, ``pool.imap``) and the writes to
  module-level state reachable from them;
* :func:`check_registry_exhaustiveness` — the live registry sweep
  behind REPRO009: every registered detector / timed implementation
  must be covered by the contract layer's default subjects and exported
  by the ``repro.api`` facade.

Everything here is import-light and purely syntactic except the
registry sweep, which deliberately asks the *live* registries (a static
parse cannot see what ``iter_registered_automata`` yields).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.findings import Finding

# ---------------------------------------------------------------------------
# The project index
# ---------------------------------------------------------------------------


class ProjectIndex:
    """Every parsed module of one lint run, indexed for the flow rules.

    ``modules`` are ``ModuleSource``-shaped objects (``path``/``text``/
    ``tree``); the index does not import :mod:`repro.lint.rules` to stay
    cycle-free.
    """

    def __init__(self, modules: Sequence[Any]):
        self.modules: List[Any] = list(modules)
        self.by_path: Dict[str, Any] = {m.path: m for m in self.modules}
        #: class name -> [(module, ClassDef)] over module-level classes.
        self.classes: Dict[str, List[Tuple[Any, ast.ClassDef]]] = {}
        #: function name -> [(module, FunctionDef)] over module-level defs.
        self.functions: Dict[str, List[Tuple[Any, ast.FunctionDef]]] = {}
        for module in self.modules:
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    self.classes.setdefault(node.name, []).append(
                        (module, node)
                    )
                elif isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    self.functions.setdefault(node.name, []).append(
                        (module, node)
                    )

    def has_path_suffix(self, *suffixes: str) -> bool:
        """Whether any indexed module path ends with one of ``suffixes``."""
        for module in self.modules:
            path = module.path.replace("\\", "/")
            if any(path.endswith(suffix) for suffix in suffixes):
                return True
        return False


# ---------------------------------------------------------------------------
# REPRO006 — fingerprint completeness
# ---------------------------------------------------------------------------

#: Spec-identity class -> the methods whose transitive attribute reads
#: count as "this field reaches the fingerprint".
FINGERPRINT_SINK_METHODS: Dict[str, Tuple[str, ...]] = {
    "ExperimentSpec": ("meta",),
    "TimedParams": ("summary",),
    "DelayModel": ("summary",),
    "FaultPlan": ("summary",),
    "ChannelFaults": ("summary",),
    "CrashRule": ("summary",),
}

#: ``(path suffix, function name, class name)`` module-level sinks: the
#: function's first parameter is treated as a receiver of the class.
#: The path suffix matters — ``repro/compiled/system.py`` defines its
#: own (narrower) ``spec_fingerprint`` for table sharing, which must
#: *not* count as cache-identity consumption.
FINGERPRINT_SINK_FUNCTIONS: Tuple[Tuple[str, str, str], ...] = (
    ("obs/ledger.py", "spec_fingerprint", "ExperimentSpec"),
)

#: The explicit in-source exemption table: fields that are *decided* to
#: stay out of the fingerprint.  ``instrument``/``profile``/
#: ``record_steps`` only attach observers (byte-identical runs either
#: way) and ``compiled`` only selects the engine (CI proves both
#: engines emit identical series), so none of them may change a result
#: cache key.  Adding a field to a fingerprinted class without either
#: consuming it in a sink or listing it here is a REPRO006 finding —
#: a new field must make a fingerprint decision explicitly.
FINGERPRINT_EXEMPT: Dict[str, FrozenSet[str]] = {
    "ExperimentSpec": frozenset(
        {"instrument", "profile", "record_steps", "compiled"}
    ),
}


@dataclass
class FieldPartition:
    """The REPRO006 verdict for one spec-identity class definition."""

    class_name: str
    module: Any
    classdef: ast.ClassDef
    #: field name -> its AnnAssign node, in declaration order.
    fields: Dict[str, ast.AnnAssign]
    #: fields transitively consumed by the fingerprint sinks.
    consumed: Set[str]
    #: fields exempted by :data:`FINGERPRINT_EXEMPT`.
    exempt: FrozenSet[str]

    @property
    def undecided(self) -> List[str]:
        """Fields with no fingerprint decision (the REPRO006 violation)."""
        return [
            name
            for name in self.fields
            if name not in self.consumed and name not in self.exempt
        ]

    @property
    def stale_exemptions(self) -> List[str]:
        """Exempted fields that *are* consumed (the exemption lies)."""
        return sorted(self.exempt & self.consumed)

    @property
    def unknown_exemptions(self) -> List[str]:
        """Exempted names that are not fields of the class at all."""
        return sorted(self.exempt - set(self.fields))


def _annotation_is_classvar(annotation: ast.expr) -> bool:
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id == "ClassVar":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "ClassVar":
            return True
    return False


def dataclass_field_nodes(classdef: ast.ClassDef) -> Dict[str, ast.AnnAssign]:
    """The class body's annotated fields, in declaration order."""
    out: Dict[str, ast.AnnAssign] = {}
    for stmt in classdef.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        if _annotation_is_classvar(stmt.annotation):
            continue
        out[stmt.target.id] = stmt
    return out


def _receiver_reads(
    func: ast.AST,
    receiver: str,
    fields: Dict[str, ast.AnnAssign],
    methods: Dict[str, ast.AST],
) -> Tuple[Set[str], Set[str]]:
    """``(fields read, methods called)`` on ``receiver`` inside ``func``.

    A ``getattr(receiver, ...)`` anywhere in the body switches the
    function to dynamic mode: every string constant naming a field
    counts as a read (the ``ChannelFaults.summary`` idiom — looping
    ``getattr(self, name)`` over a tuple of field-name literals).
    """
    consumed: Set[str] = set()
    called: Set[str] = set()
    dynamic = False
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == receiver
        ):
            if node.attr in fields:
                consumed.add(node.attr)
            elif node.attr in methods:
                called.add(node.attr)
        elif isinstance(node, ast.Call):
            callee = node.func
            if (
                isinstance(callee, ast.Name)
                and callee.id == "getattr"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == receiver
            ):
                dynamic = True
    if dynamic:
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in fields
            ):
                consumed.add(node.value)
    return consumed, called


def fingerprint_partition(project: ProjectIndex) -> List[FieldPartition]:
    """The REPRO006 analysis over every spec-identity class in ``project``.

    For each class named in :data:`FINGERPRINT_SINK_METHODS` that the
    project defines, computes the transitive closure of attribute reads
    starting from the sink methods (plus the path-qualified module-level
    sinks of :data:`FINGERPRINT_SINK_FUNCTIONS`) and partitions the
    class's dataclass fields into consumed / exempt / undecided.
    """
    partitions: List[FieldPartition] = []
    for class_name, sink_methods in sorted(FINGERPRINT_SINK_METHODS.items()):
        for module, classdef in project.classes.get(class_name, ()):
            fields = dataclass_field_nodes(classdef)
            methods: Dict[str, ast.AST] = {
                stmt.name: stmt
                for stmt in classdef.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            consumed: Set[str] = set()
            queue: List[str] = list(sink_methods)
            for suffix, fn_name, fn_class in FINGERPRINT_SINK_FUNCTIONS:
                if fn_class != class_name:
                    continue
                for fn_module, fn_def in project.functions.get(fn_name, ()):
                    path = fn_module.path.replace("\\", "/")
                    if not path.endswith(suffix):
                        continue
                    if not fn_def.args.args:
                        continue
                    receiver = fn_def.args.args[0].arg
                    got, called = _receiver_reads(
                        fn_def, receiver, fields, methods
                    )
                    consumed |= got
                    queue.extend(sorted(called))
            visited: Set[str] = set()
            while queue:
                name = queue.pop()
                if name in visited:
                    continue
                visited.add(name)
                method = methods.get(name)
                if method is None:
                    continue
                got, called = _receiver_reads(method, "self", fields, methods)
                consumed |= got
                queue.extend(sorted(called))
            partitions.append(
                FieldPartition(
                    class_name=class_name,
                    module=module,
                    classdef=classdef,
                    fields=fields,
                    consumed=consumed & set(fields),
                    exempt=FINGERPRINT_EXEMPT.get(class_name, frozenset()),
                )
            )
    return partitions


# ---------------------------------------------------------------------------
# REPRO007 — cross-process worker race hazards
# ---------------------------------------------------------------------------

#: Callee spellings whose first positional argument is fanned out to
#: worker processes.  ``parallel_map`` matches as a bare name or an
#: attribute (``runner.parallel_map``); the pool methods only as
#: attributes so the ``map`` builtin stays out of scope.
FAN_OUT_FIRST_ARG_NAMES: FrozenSet[str] = frozenset({"parallel_map"})
FAN_OUT_FIRST_ARG_ATTRS: FrozenSet[str] = frozenset(
    {"parallel_map", "map", "imap", "imap_unordered", "starmap", "apply_async"}
)

#: Method names that mutate their receiver in place.
MUTATING_METHODS: FrozenSet[str] = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "extendleft",
    }
)

#: ``(path suffix, module-level name)`` writes that are allowed from
#: worker-reachable code — intentional telemetry seams whose divergence
#: across processes is understood and reported (cache hit/miss counters
#: are merged, never part of a series).
WORKER_STATE_ALLOWLIST: FrozenSet[Tuple[str, str]] = frozenset()

#: Initializer callees whose module-level bindings are treated as
#: allowed seams: ``_C = cache_counter("...")`` is the documented
#: pattern for per-process cache telemetry.
ALLOWED_SEAM_FACTORIES: FrozenSet[str] = frozenset({"cache_counter"})


def _module_level_functions(tree: ast.Module) -> Dict[str, ast.AST]:
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _module_level_names(tree: ast.Module) -> Dict[str, Optional[ast.expr]]:
    """Module-level bindings: name -> initializer expression (or None)."""
    out: Dict[str, Optional[ast.expr]] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                out[node.target.id] = node.value
    return out


def _first_fanned_arg(call: ast.Call) -> Optional[ast.expr]:
    """The worker argument of a fan-out call, or None."""
    callee = call.func
    matches = False
    if isinstance(callee, ast.Name):
        matches = callee.id in FAN_OUT_FIRST_ARG_NAMES
    elif isinstance(callee, ast.Attribute):
        matches = callee.attr in FAN_OUT_FIRST_ARG_ATTRS
    if not matches or not call.args:
        return None
    worker = call.args[0]
    # functools.partial(fn, ...) fans out fn.
    if isinstance(worker, ast.Call):
        last = worker.func
        name = (
            last.attr
            if isinstance(last, ast.Attribute)
            else last.id
            if isinstance(last, ast.Name)
            else None
        )
        if name == "partial" and worker.args:
            return worker.args[0]
    return worker


def worker_entry_points(tree: ast.Module) -> Dict[str, ast.AST]:
    """Module-level functions handed to a fork-pool fan-out call."""
    functions = _module_level_functions(tree)
    entries: Dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        worker = _first_fanned_arg(node)
        if isinstance(worker, ast.Name) and worker.id in functions:
            entries[worker.id] = functions[worker.id]
    return entries


def _binding_names(target: ast.expr) -> Iterable[str]:
    """Names a target expression *binds* — ``x[k] = ...`` and
    ``x.attr = ...`` write through ``x`` without binding it, so
    subscript/attribute targets yield nothing."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _binding_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _binding_names(target.value)


def _local_names(func: ast.AST) -> Set[str]:
    """Names bound locally inside ``func`` (minus ``global`` escapes)."""
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    locals_: Set[str] = set()
    args = func.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        locals_.add(arg.arg)
    globals_: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            globals_.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                locals_.update(_binding_names(target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            locals_.update(_binding_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    locals_.update(_binding_names(item.optional_vars))
        elif isinstance(node, ast.comprehension):
            locals_.update(_binding_names(node.target))
    return locals_ - globals_


def _root_name(node: ast.expr) -> Optional[str]:
    """The root Name of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


@dataclass
class WorkerWrite:
    """One hazardous write found by the REPRO007 analysis."""

    node: ast.AST
    name: str
    kind: str  # "rebind" | "mutate" | "mutate-call" | "nonlocal"
    entry: str  # the worker entry point it is reachable from
    via: str  # the function containing the write


def _reachable_functions(
    tree: ast.Module, entries: Dict[str, ast.AST]
) -> Dict[str, Tuple[str, ast.AST]]:
    """function name -> (entry it is reachable from, def node)."""
    functions = _module_level_functions(tree)
    reachable: Dict[str, Tuple[str, ast.AST]] = {}
    for entry_name in sorted(entries):
        stack = [entry_name]
        while stack:
            name = stack.pop()
            if name in reachable:
                continue
            func = functions.get(name)
            if func is None:
                continue
            reachable[name] = (entry_name, func)
            for node in ast.walk(func):
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Name
                ):
                    if node.func.id in functions:
                        stack.append(node.func.id)
    return reachable


def worker_state_writes(
    tree: ast.Module, path: str = ""
) -> List[WorkerWrite]:
    """Writes to module-level state reachable from worker entry points."""
    entries = worker_entry_points(tree)
    if not entries:
        return []
    module_names = _module_level_names(tree)
    allowed: Set[str] = set()
    norm_path = path.replace("\\", "/")
    for name, initializer in module_names.items():
        if isinstance(initializer, ast.Call):
            callee = initializer.func
            last = (
                callee.attr
                if isinstance(callee, ast.Attribute)
                else callee.id
                if isinstance(callee, ast.Name)
                else None
            )
            if last in ALLOWED_SEAM_FACTORIES:
                allowed.add(name)
    for suffix, name in WORKER_STATE_ALLOWLIST:
        if norm_path.endswith(suffix):
            allowed.add(name)

    writes: List[WorkerWrite] = []
    for fn_name, (entry, func) in sorted(
        _reachable_functions(tree, entries).items()
    ):
        locals_ = _local_names(func)
        nonlocals: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Nonlocal):
                nonlocals.update(node.names)
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    root = _root_name(target)
                    if root is None or root in allowed:
                        continue
                    if root in nonlocals:
                        writes.append(
                            WorkerWrite(node, root, "nonlocal", entry, fn_name)
                        )
                        continue
                    if root in locals_ and isinstance(target, ast.Name):
                        continue
                    if root in locals_:
                        # Subscript/attribute write through a local.
                        continue
                    if root in module_names:
                        kind = (
                            "rebind"
                            if isinstance(target, ast.Name)
                            else "mutate"
                        )
                        writes.append(
                            WorkerWrite(node, root, kind, entry, fn_name)
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr not in MUTATING_METHODS:
                    continue
                root = _root_name(node.func.value)
                if (
                    root is not None
                    and root not in allowed
                    and root not in locals_
                    and root in module_names
                ):
                    writes.append(
                        WorkerWrite(node, root, "mutate-call", entry, fn_name)
                    )
    return writes


# ---------------------------------------------------------------------------
# REPRO008 — seed-derivation discipline (per-function taint helpers)
# ---------------------------------------------------------------------------

#: Callables that *are* the sanctioned seed-derivation roots.
SEED_DERIVATION_ROOTS: FrozenSet[str] = frozenset(
    {"derive_seed", "derive_seeds", "channel_seed"}
)


def _last_segment(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def tainted_seed_expr(
    node: ast.expr, assigned: Dict[str, ast.expr]
) -> Optional[str]:
    """Why ``node`` is an undisciplined seed expression, or ``None``.

    Returns ``"mixing"`` for arithmetic (``seed + i``, ``seed * 31``),
    ``"hash"`` for salted ``hash(...)`` flow, chasing one level of
    single-assignment locals recorded in ``assigned``.
    """
    if isinstance(node, ast.BinOp):
        return "mixing"
    if isinstance(node, ast.Call):
        if _last_segment(node.func) == "hash":
            return "hash"
        return None
    if isinstance(node, ast.Name):
        value = assigned.get(node.id)
        if value is not None and not isinstance(value, ast.Name):
            return tainted_seed_expr(value, {})
    return None


def single_assignments(scope: ast.AST) -> Dict[str, ast.expr]:
    """Names assigned exactly once in ``scope`` -> their value node.

    Nested function/class scopes are not descended into, so the map is
    honest about what a name means *in this scope*.
    """
    counts: Dict[str, int] = {}
    values: Dict[str, ast.expr] = {}

    def visit(node: ast.AST, top: bool) -> None:
        if not top and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    counts[target.id] = counts.get(target.id, 0) + 1
                    values[target.id] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                counts[node.target.id] = counts.get(node.target.id, 0) + 1
                values[node.target.id] = node.value
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                counts[node.target.id] = counts.get(node.target.id, 0) + 2
        for child in ast.iter_child_nodes(node):
            visit(child, False)

    visit(scope, True)
    return {
        name: value
        for name, value in values.items()
        if counts.get(name) == 1
    }


# ---------------------------------------------------------------------------
# REPRO009 — registry exhaustiveness
# ---------------------------------------------------------------------------


def _live_detector_items() -> List[Tuple[str, type]]:
    from repro.detectors.registry import iter_registered_automata

    return [
        (name, type(afd))
        for name, afd, _automaton in iter_registered_automata()
    ]


def _live_timed_items() -> List[Tuple[str, type]]:
    from repro.timed.registry import IMPLEMENTATIONS

    return sorted(IMPLEMENTATIONS.items())


def _live_subject_names() -> Set[str]:
    from repro.lint.contract import default_contract_subjects

    return {subject.name for subject in default_contract_subjects()}


def _live_facade_names() -> Set[str]:
    import repro.api

    return set(repro.api.__all__)


def _registry_finding(cls: type, code: str, message: str) -> Finding:
    from repro.lint.contract import _source_anchor

    path, line = _source_anchor(cls)
    return Finding(path=path, line=line, col=1, code=code, message=message)


def check_registry_exhaustiveness(
    code: str = "REPRO009",
    detector_items: Optional[Iterable[Tuple[str, type]]] = None,
    timed_items: Optional[Iterable[Tuple[str, type]]] = None,
    subject_names: Optional[Set[str]] = None,
    facade_names: Optional[Set[str]] = None,
) -> List[Finding]:
    """Every registered automaton must be contract-checked and exported.

    ``None`` arguments pull the live registries / subjects / facade, so
    the production rule needs no configuration while tests can inject
    synthetic gaps.
    """
    if detector_items is None:
        detector_items = _live_detector_items()
    if timed_items is None:
        timed_items = _live_timed_items()
    if subject_names is None:
        subject_names = _live_subject_names()
    if facade_names is None:
        facade_names = _live_facade_names()

    findings: List[Finding] = []
    seen_classes: Set[type] = set()

    def check_family(
        items: Iterable[Tuple[str, type]], prefix: str, registry: str
    ) -> None:
        for name, cls in items:
            for subject in (f"{prefix}:{name}", f"compiled:{prefix}:{name}"):
                if subject not in subject_names:
                    findings.append(
                        _registry_finding(
                            cls,
                            code,
                            f"registered {registry} {name!r} has no "
                            f"{subject!r} entry in "
                            "default_contract_subjects(); every registry "
                            "entry must be contract-checked on both "
                            "engines",
                        )
                    )
            if cls not in seen_classes:
                seen_classes.add(cls)
                if cls.__name__ not in facade_names:
                    findings.append(
                        _registry_finding(
                            cls,
                            code,
                            f"registered {registry} class "
                            f"{cls.__name__} is not exported by the "
                            "repro.api facade; registry entries are "
                            "public surface and belong in "
                            "repro/api.py __all__",
                        )
                    )

    check_family(detector_items, "detector", "detector")
    check_family(timed_items, "timed", "timed implementation")
    return sorted(findings)


__all__ = [
    "ALLOWED_SEAM_FACTORIES",
    "FAN_OUT_FIRST_ARG_ATTRS",
    "FAN_OUT_FIRST_ARG_NAMES",
    "FINGERPRINT_EXEMPT",
    "FINGERPRINT_SINK_FUNCTIONS",
    "FINGERPRINT_SINK_METHODS",
    "FieldPartition",
    "MUTATING_METHODS",
    "ProjectIndex",
    "SEED_DERIVATION_ROOTS",
    "WORKER_STATE_ALLOWLIST",
    "WorkerWrite",
    "check_registry_exhaustiveness",
    "dataclass_field_nodes",
    "fingerprint_partition",
    "single_assignments",
    "tainted_seed_expr",
    "worker_entry_points",
    "worker_state_writes",
]
