"""Inline suppression comments.

Two spellings, mirroring the usual linter conventions:

* ``# repro-lint: disable=REPRO001`` (or ``disable=REPRO001,REPRO003``,
  or ``disable=all``) at the end of a line suppresses the named codes on
  *that line only*;
* ``# repro-lint: disable-file=REPRO002`` anywhere in the first
  ``FILE_PRAGMA_WINDOW`` lines suppresses the named codes for the whole
  file (for generated files and fixtures).

Suppressions apply to the AST layer; contract findings (``REPROC*``)
are attached to classes, not lines, and are excluded via the CLI's
``--ignore`` instead.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Sequence

#: Lines scanned for ``disable-file=`` pragmas.
FILE_PRAGMA_WINDOW = 10

#: Sentinel code-set meaning "every code".
ALL_CODES = frozenset({"all"})

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_,\s]+)"
)


def _parse_codes(raw: str) -> FrozenSet[str]:
    codes = frozenset(
        c.strip() for c in raw.split(",") if c.strip()
    )
    if "all" in {c.lower() for c in codes}:
        return ALL_CODES
    return codes


class Suppressions:
    """The parsed suppression pragmas of one source file."""

    def __init__(self, lines: Sequence[str]):
        self.line_codes: Dict[int, FrozenSet[str]] = {}
        self.file_codes: FrozenSet[str] = frozenset()
        for lineno, text in enumerate(lines, start=1):
            match = _PRAGMA.search(text)
            if match is None:
                continue
            codes = _parse_codes(match.group("codes"))
            if match.group("kind") == "disable-file":
                if lineno <= FILE_PRAGMA_WINDOW:
                    self.file_codes = self.file_codes | codes
            else:
                existing = self.line_codes.get(lineno, frozenset())
                self.line_codes[lineno] = existing | codes

    def is_suppressed(self, line: int, code: str) -> bool:
        """Whether ``code`` is suppressed on ``line``."""
        for codes in (self.file_codes, self.line_codes.get(line, frozenset())):
            if codes is ALL_CODES or codes == ALL_CODES or code in codes:
                return True
        return False
