"""The lint engine: file discovery, rule dispatch, suppression, baseline.

:func:`lint_paths` is the one entry point both the CLI and the test
suite use.  It walks the given paths for ``*.py`` files (sorted, so
output order is stable across filesystems), parses each once, runs the
selected rules, applies inline suppressions and the committed baseline,
and returns a :class:`LintResult` that knows how to render itself as
text or JSON and what exit code it implies.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import ast

from repro.lint.baseline import load_baseline, split_by_baseline
from repro.lint.findings import PARSE_ERROR_CODE, Finding
from repro.lint.rules import ALL_RULES, RULES_BY_CODE, ModuleSource, Rule
from repro.lint.suppress import Suppressions

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".ruff_cache", ".mypy_cache"}


def collect_files(paths: Sequence[str]) -> List[str]:
    """Every ``*.py`` file under ``paths`` (files pass through), sorted."""
    found: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                found.add(os.path.normpath(path))
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in _SKIP_DIRS
            )
            for name in filenames:
                if name.endswith(".py"):
                    found.add(os.path.normpath(os.path.join(dirpath, name)))
    return sorted(found)


def select_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """The rule instances matching ``--select`` / ``--ignore``.

    Raises :class:`ValueError` on a code that names no AST rule (contract
    codes ``REPROC*`` are filtered at the finding level instead, so they
    are accepted silently here).
    """
    selected = set(select) if select else None
    ignored = set(ignore) if ignore else set()
    for code in (selected or set()) | ignored:
        if not code.startswith("REPRO"):
            raise ValueError(f"unknown lint code {code!r}")
    rules = []
    for rule in ALL_RULES:
        if selected is not None and rule.code not in selected:
            continue
        if rule.code in ignored:
            continue
        rules.append(rule)
    return rules


def _load_module(
    path: str, display_path: Optional[str] = None
) -> Tuple[Optional[ModuleSource], Optional[Suppressions], Optional[Finding]]:
    """Parse one file: ``(module, suppressions, parse_error_finding)``."""
    shown = display_path or path.replace(os.sep, "/")
    try:
        with open(path, "r", encoding="utf-8") as fp:
            text = fp.read()
    except OSError as exc:
        return (
            None,
            None,
            Finding(shown, 1, 1, PARSE_ERROR_CODE, f"unreadable: {exc}"),
        )
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        return (
            None,
            None,
            Finding(
                shown,
                exc.lineno or 1,
                exc.offset or 1,
                PARSE_ERROR_CODE,
                f"syntax error: {exc.msg}",
            ),
        )
    return ModuleSource(shown, text, tree), Suppressions(text.splitlines()), None


def lint_file(
    path: str, rules: Sequence[Rule], display_path: Optional[str] = None
) -> Tuple[List[Finding], int]:
    """Lint one file with the per-file rules; ``(findings, suppressed)``.

    Project-scoped rules are inert here (their per-file ``check`` yields
    nothing); :func:`lint_paths` runs them over the whole file set.
    """
    module, suppressions, error = _load_module(path, display_path)
    if module is None or suppressions is None:
        return [error] if error is not None else [], 0
    findings: List[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(module):
            if suppressions.is_suppressed(finding.line, finding.code):
                suppressed += 1
            else:
                findings.append(finding)
    return sorted(findings), suppressed


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def render_text(self) -> str:
        lines = [f.format_text() for f in self.findings]
        summary = (
            f"{len(self.findings)} finding(s) in {self.files_checked} "
            f"file(s) ({len(self.baselined)} baselined, "
            f"{self.suppressed} suppressed inline)"
        )
        return "\n".join(lines + [summary])

    def render_github(self) -> str:
        """GitHub Actions workflow-command annotations, one per finding.

        ``::error file=...,line=...,col=...,title=CODE::CODE message``
        lines surface inline on the PR diff; the trailing summary line
        is plain text (Actions ignores non-command lines).
        """

        def esc(text: str) -> str:
            # Workflow-command escaping: data portion keeps %/newlines.
            return (
                text.replace("%", "%25")
                .replace("\r", "%0D")
                .replace("\n", "%0A")
            )

        lines = [
            f"::error file={f.path},line={f.line},col={f.col},"
            f"title={f.code}::{esc(f.code + ' ' + f.message)}"
            for f in self.findings
        ]
        summary = (
            f"{len(self.findings)} finding(s) in {self.files_checked} "
            f"file(s) ({len(self.baselined)} baselined, "
            f"{self.suppressed} suppressed inline)"
        )
        return "\n".join(lines + [summary])

    def render_json(self) -> str:
        return json.dumps(
            {
                "schema": "repro.lint/1",
                "findings": [f.to_dict() for f in self.findings],
                "baselined": [f.to_dict() for f in self.baselined],
                "suppressed": self.suppressed,
                "files_checked": self.files_checked,
                "exit_code": self.exit_code,
            },
            indent=2,
            sort_keys=True,
        )


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    baseline_path: Optional[str] = None,
    extra_findings: Iterable[Finding] = (),
) -> LintResult:
    """Run the AST layer over ``paths`` and assemble the result.

    ``extra_findings`` lets the CLI merge contract-layer findings into
    the same suppression/baseline pipeline; they are filtered by
    ``select``/``ignore`` like any finding.
    """
    rules = select_rules(select, ignore)
    file_rules = [r for r in rules if getattr(r, "scope", "file") == "file"]
    project_rules = [
        r for r in rules if getattr(r, "scope", "file") == "project"
    ]
    files = collect_files(paths)
    findings: List[Finding] = []
    suppressed = 0
    modules: List[ModuleSource] = []
    suppressions_by_path: Dict[str, Suppressions] = {}
    for path in files:
        module, file_suppressions, error = _load_module(path)
        if module is None or file_suppressions is None:
            if error is not None:
                findings.append(error)
            continue
        modules.append(module)
        suppressions_by_path[module.path] = file_suppressions
        for rule in file_rules:
            for finding in rule.check(module):
                if file_suppressions.is_suppressed(
                    finding.line, finding.code
                ):
                    suppressed += 1
                else:
                    findings.append(finding)
    if project_rules:
        from repro.lint.dataflow import ProjectIndex

        project = ProjectIndex(modules)
        for rule in project_rules:
            for finding in rule.check_project(project):
                file_suppressions = suppressions_by_path.get(finding.path)
                if file_suppressions is not None and (
                    file_suppressions.is_suppressed(
                        finding.line, finding.code
                    )
                ):
                    suppressed += 1
                else:
                    findings.append(finding)
    selected = set(select) if select else None
    ignored = set(ignore) if ignore else set()
    for finding in extra_findings:
        if selected is not None and finding.code not in selected:
            continue
        if finding.code in ignored:
            continue
        findings.append(finding)
    baseline = load_baseline(baseline_path) if baseline_path else set()
    new, old = split_by_baseline(sorted(findings), baseline)
    return LintResult(
        findings=new,
        baselined=old,
        suppressed=suppressed,
        files_checked=len(files),
    )
