"""The AST rules: determinism invariants as stable REPRO codes.

Each rule inspects one parsed module and yields findings.  The rules
encode the conventions the harness's reproducibility claims rest on —
byte-identical serial-vs-parallel traces, cached-vs-brute-force series
equality, seed-pure chaos schedules — as static checks:

=========  ==============================================================
REPRO001   wall-clock reads (``time.time``, ``datetime.now``, argless
           ``datetime.today``) outside the explicit allowlist
REPRO002   unseeded randomness (``random.Random()`` with no seed,
           module-level ``random.*``/``numpy.random.*`` calls,
           ``random.SystemRandom``, ``os.urandom``, ``secrets``)
REPRO003   iteration over ``set()`` / ``dict.keys()`` results flowing
           into trace/serialization sinks without ``sorted(...)``
REPRO004   deprecated ``observer=`` / ``metrics=`` instrumentation
           kwargs (superseded by ``instrument=``)
REPRO005   mutable default arguments in ``Automaton``-subclass
           constructors
REPRO006   spec-identity dataclass fields consumed by no fingerprint
           sink (``meta``/``summary``/``spec_fingerprint``) and not
           explicitly exempted — the stale-result-cache tripwire
REPRO007   writes to module-level state (or closure cells) reachable
           from fork-pool worker entry points
REPRO008   seeds built by arithmetic mixing (``seed + i``) or
           ``hash(...)`` instead of ``derive_seed``/``channel_seed``
REPRO009   registered automata missing from the contract layer's
           default subjects or the ``repro.api`` facade
=========  ==============================================================

Name resolution is import-aware but purely syntactic: ``import time as
clock; clock.time()`` is caught, a ``time`` attribute on an arbitrary
object is not.  REPRO003 is a heuristic over direct data flow (sink
arguments and loop bodies); it does not chase values through
assignments.  REPRO006-REPRO009 are the flow-aware layer: their
project-wide machinery (field-consumption closure, per-module call
graph, seed taint, live registry sweep) lives in
:mod:`repro.lint.dataflow`; REPRO006/REPRO009 run once per lint run
over every parsed module (:class:`ProjectRule`).  ``docs/LINT.md``
carries the full catalog with bad/good examples per code.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding, finding_at

# ---------------------------------------------------------------------------
# Shared syntactic helpers
# ---------------------------------------------------------------------------


def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the qualified names they were imported as.

    ``import time as clock`` maps ``clock -> time``; ``from datetime
    import datetime as dt`` maps ``dt -> datetime.datetime``.  Star
    imports and relative imports are ignored.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                aliases[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def resolve_dotted(
    node: ast.AST, aliases: Dict[str, str]
) -> Optional[str]:
    """The qualified dotted name of a Name/Attribute chain, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def callee_last_segment(call: ast.Call) -> Optional[str]:
    """The final name segment of a call's callee (``a.b.C(...)`` → C)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class Rule:
    """One AST rule: a stable code plus a ``check`` over a module."""

    code: str = ""
    summary: str = ""
    #: ``"file"`` rules run per module via :meth:`check`; ``"project"``
    #: rules run once per lint run via ``check_project`` (see
    #: :class:`ProjectRule`).
    scope: str = "file"

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        raise NotImplementedError


class ModuleSource:
    """A parsed module handed to the rules."""

    def __init__(self, path: str, text: str, tree: ast.Module):
        self.path = path  # repo-relative posix path, as reported
        self.text = text
        self.tree = tree
        self.aliases = import_aliases(tree)

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        return finding_at(self.path, node, code, message)


# ---------------------------------------------------------------------------
# REPRO001 — wall-clock reads
# ---------------------------------------------------------------------------

#: Qualified names whose *value* is the current wall-clock time.
WALL_CLOCK_NAMES: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
    }
)

#: ``today`` classmethods: flagged only as argless calls.
WALL_CLOCK_TODAY: FrozenSet[str] = frozenset(
    {
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: path-suffix -> qualified names allowed there.  The three entries are
#: the ``created_unix`` stamps of the benchmark artifact, the profile
#: summary and the run ledger — each a read *about* the current moment
#: behind an injectable ``now_fn`` seam, flowing into no trace or series
#: (docs/LINT.md).
WALL_CLOCK_ALLOWLIST: Dict[str, FrozenSet[str]] = {
    "repro/obs/schema.py": frozenset({"time.time"}),
    "repro/obs/prof.py": frozenset({"time.time"}),
    "repro/obs/ledger.py": frozenset({"time.time"}),
}


class WallClockRule(Rule):
    code = "REPRO001"
    summary = "wall-clock read outside the allowlist"

    def _allowed(self, module: ModuleSource, qualified: str) -> bool:
        path = module.path.replace("\\", "/")
        for suffix, names in WALL_CLOCK_ALLOWLIST.items():
            if path.endswith(suffix) and qualified in names:
                return True
        return False

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        call_funcs: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                call_funcs.add(id(node.func))
                qualified = resolve_dotted(node.func, module.aliases)
                if qualified is None:
                    continue
                if qualified in WALL_CLOCK_NAMES or (
                    qualified in WALL_CLOCK_TODAY
                    and not node.args
                    and not node.keywords
                ):
                    if not self._allowed(module, qualified):
                        yield module.finding(
                            node.func,
                            self.code,
                            f"wall-clock call {qualified}() in a "
                            "simulation/library path; inject a now_fn or "
                            "use the seeded scheduler clock",
                        )
        # Bare references (aliasing, default arguments) leak the clock
        # just as well as calls do.
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if id(node) in call_funcs:
                continue
            if not isinstance(getattr(node, "ctx", None), ast.Load):
                continue
            qualified = resolve_dotted(node, module.aliases)
            if qualified in WALL_CLOCK_NAMES and not self._allowed(
                module, qualified
            ):
                yield module.finding(
                    node,
                    self.code,
                    f"reference to wall-clock function {qualified}; "
                    "aliasing it smuggles nondeterminism past review",
                )


# ---------------------------------------------------------------------------
# REPRO002 — unseeded randomness
# ---------------------------------------------------------------------------

#: Module-level ``random`` functions that draw from the shared global RNG.
GLOBAL_RNG_FUNCS: FrozenSet[str] = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.uniform",
        "random.gauss",
        "random.normalvariate",
        "random.expovariate",
        "random.betavariate",
        "random.seed",
        "random.getrandbits",
        "random.randbytes",
    }
)

#: OS-entropy reads: irreproducible by construction.
ENTROPY_FUNCS: FrozenSet[str] = frozenset(
    {"os.urandom", "secrets.token_bytes", "secrets.token_hex", "secrets.randbits"}
)

#: ``numpy.random`` module-level functions (the shared legacy global
#: RNG) — every spelling resolves through the import aliases, so
#: ``np.random.seed`` and ``from numpy.random import shuffle`` are both
#: caught.
NUMPY_GLOBAL_RNG_FUNCS: FrozenSet[str] = frozenset(
    {
        f"numpy.random.{name}"
        for name in (
            "random",
            "rand",
            "randn",
            "randint",
            "random_sample",
            "choice",
            "shuffle",
            "permutation",
            "normal",
            "uniform",
            "standard_normal",
            "bytes",
            "seed",
        )
    }
)

#: ``numpy.random`` generator constructors: fine *with* a seed.
NUMPY_RNG_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {"numpy.random.default_rng", "numpy.random.RandomState", "numpy.random.Generator"}
)


class UnseededRandomRule(Rule):
    code = "REPRO002"
    summary = "unseeded or process-global randomness"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = resolve_dotted(node.func, module.aliases)
            if qualified is None:
                continue
            if qualified in GLOBAL_RNG_FUNCS:
                yield module.finding(
                    node.func,
                    self.code,
                    f"{qualified}() uses the process-global RNG; "
                    "construct random.Random(seed) from a derived seed",
                )
            elif qualified in NUMPY_GLOBAL_RNG_FUNCS:
                yield module.finding(
                    node.func,
                    self.code,
                    f"{qualified}() uses numpy's process-global RNG; "
                    "construct numpy.random.default_rng(seed) from a "
                    "derived seed",
                )
            elif qualified in NUMPY_RNG_CONSTRUCTORS:
                seeded = bool(node.args) or any(
                    kw.arg in (None, "seed") for kw in node.keywords
                )
                if not seeded:
                    yield module.finding(
                        node.func,
                        self.code,
                        f"{qualified}() without a seed draws from OS "
                        "entropy; pass a derived seed",
                    )
            elif qualified in ENTROPY_FUNCS:
                yield module.finding(
                    node.func,
                    self.code,
                    f"{qualified}() reads OS entropy and can never be "
                    "reproduced from a seed",
                )
            elif qualified == "random.SystemRandom":
                yield module.finding(
                    node.func,
                    self.code,
                    "random.SystemRandom is entropy-backed and can never "
                    "be reproduced from a seed",
                )
            elif qualified == "random.Random":
                seeded = bool(node.args) or any(
                    kw.arg in (None, "x", "seed") for kw in node.keywords
                )
                if not seeded:
                    yield module.finding(
                        node.func,
                        self.code,
                        "random.Random() without a seed falls back to OS "
                        "entropy; pass a derived seed "
                        "(repro.runner.seeds.derive_seed)",
                    )


# ---------------------------------------------------------------------------
# REPRO003 — unordered iteration into serialization sinks
# ---------------------------------------------------------------------------

#: Fully qualified sink callables.
SINK_QUALIFIED: FrozenSet[str] = frozenset({"json.dump", "json.dumps"})

#: Callee last-segments treated as serialization/trace sinks.
SINK_LAST_SEGMENTS: FrozenSet[str] = frozenset(
    {
        "jsonify_cell",
        "canonical_jsonl_lines",
        "jsonl_lines",
        "to_jsonl",
        "writelines",
        "make_bench_artifact",
    }
)

#: Calls that neutralize iteration order (sorted) or never depend on it
#: (pure aggregates); their subtrees are skipped.
ORDER_NEUTRAL_CALLS: FrozenSet[str] = frozenset(
    {
        "sorted",
        "sorted_tuple",
        "len",
        "sum",
        "min",
        "max",
        "any",
        "all",
    }
)


def _is_unordered_expr(node: ast.AST) -> bool:
    """Whether ``node`` evaluates to an iteration-order-unstable value."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        last = callee_last_segment(node)
        if last in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args
            and not node.keywords
        ):
            return True
    return False


def _iter_unordered(node: ast.AST) -> Iterator[ast.AST]:
    """Unordered expressions at or under ``node``, skipping order-neutral
    subtrees (``sorted(...)``, ``len(...)``, ...)."""
    if isinstance(node, ast.Call):
        last = callee_last_segment(node)
        if last in ORDER_NEUTRAL_CALLS:
            return
    if _is_unordered_expr(node):
        yield node
        return
    for child in ast.iter_child_nodes(node):
        yield from _iter_unordered(child)


class UnorderedIterationRule(Rule):
    code = "REPRO003"
    summary = "unordered-collection iteration feeding a serialization sink"

    def _is_sink(self, call: ast.Call, aliases: Dict[str, str]) -> bool:
        qualified = resolve_dotted(call.func, aliases)
        if qualified in SINK_QUALIFIED:
            return True
        return callee_last_segment(call) in SINK_LAST_SEGMENTS

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        sink_calls: List[ast.Call] = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Call)
            and self._is_sink(node, module.aliases)
        ]
        seen: Set[int] = set()
        for call in sink_calls:
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                for unordered in _iter_unordered(arg):
                    if id(unordered) in seen:
                        continue
                    seen.add(id(unordered))
                    yield module.finding(
                        unordered,
                        self.code,
                        "unordered collection reaches a serialization "
                        "sink; wrap the iteration in sorted(...) to "
                        "pin the order",
                    )
        # For-loops over unordered iterables whose bodies hit a sink.
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if not any(_iter_unordered(node.iter)):
                continue
            body_has_sink = any(
                isinstance(inner, ast.Call)
                and self._is_sink(inner, module.aliases)
                for stmt in node.body
                for inner in ast.walk(stmt)
            )
            if body_has_sink and id(node.iter) not in seen:
                seen.add(id(node.iter))
                yield module.finding(
                    node.iter,
                    self.code,
                    "loop over an unordered collection emits into a "
                    "serialization sink; iterate sorted(...) instead",
                )


# ---------------------------------------------------------------------------
# REPRO004 — deprecated instrumentation kwargs
# ---------------------------------------------------------------------------

#: callee last-segment -> deprecated keyword names on that callee.
DEPRECATED_KWARGS: Dict[str, FrozenSet[str]] = {
    "Scheduler": frozenset({"observer"}),
    "TaggedTreeGraph": frozenset({"metrics"}),
    "find_hooks": frozenset({"metrics"}),
    "HookSearch": frozenset({"metrics"}),
    "run_consensus_experiment": frozenset({"observer", "metrics"}),
}

#: Deprecated builder-method spellings.
DEPRECATED_METHODS: FrozenSet[str] = frozenset(
    {"with_observer", "with_metrics"}
)


class DeprecatedKwargRule(Rule):
    code = "REPRO004"
    summary = "deprecated observer=/metrics= instrumentation spelling"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            last = callee_last_segment(node)
            if last in DEPRECATED_METHODS:
                yield module.finding(
                    node.func,
                    self.code,
                    f".{last}() is deprecated; use "
                    ".with_instrumentation(instrument)",
                )
                continue
            deprecated = DEPRECATED_KWARGS.get(last or "")
            if not deprecated:
                continue
            for kw in node.keywords:
                if kw.arg in deprecated:
                    yield module.finding(
                        kw.value,
                        self.code,
                        f"{last}({kw.arg}=...) is deprecated; pass "
                        "instrument= (an Observer, a MetricsRegistry, an "
                        "Instrumentation bundle, or a tuple of those)",
                    )


# ---------------------------------------------------------------------------
# REPRO005 — mutable defaults in Automaton constructors
# ---------------------------------------------------------------------------


def _is_automaton_base(base: ast.expr) -> bool:
    last: Optional[str] = None
    if isinstance(base, ast.Attribute):
        last = base.attr
    elif isinstance(base, ast.Name):
        last = base.id
    if last is None:
        return False
    return last.endswith("Automaton") or last in ("AFD", "ProcessAutomaton")


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        return callee_last_segment(node) in (
            "list",
            "dict",
            "set",
            "bytearray",
            "defaultdict",
            "deque",
        )
    return False


class MutableDefaultRule(Rule):
    code = "REPRO005"
    summary = "mutable default argument in an Automaton constructor"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(_is_automaton_base(b) for b in node.bases):
                continue
            for stmt in node.body:
                if (
                    not isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    or stmt.name != "__init__"
                ):
                    continue
                defaults = list(stmt.args.defaults) + [
                    d for d in stmt.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if _is_mutable_default(default):
                        yield module.finding(
                            default,
                            self.code,
                            f"mutable default in {node.name}.__init__; "
                            "shared across instances and across runs — "
                            "use None or an immutable value",
                        )


# ---------------------------------------------------------------------------
# The flow-aware layer (REPRO006-REPRO009, repro.lint.dataflow)
# ---------------------------------------------------------------------------


class ProjectRule(Rule):
    """A rule that needs the whole lint run, not one module.

    ``check`` (the per-file hook) yields nothing so project rules are
    inert under :func:`repro.lint.engine.lint_file`; the engine calls
    :meth:`check_project` once per run with the
    :class:`~repro.lint.dataflow.ProjectIndex` of every parsed module.
    """

    scope = "project"

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        raise NotImplementedError


class FingerprintCompletenessRule(ProjectRule):
    """REPRO006: every spec field needs a fingerprint decision.

    The content-addressed result cache keys on
    ``spec_fingerprint(spec)``; a field that changes executions but not
    the fingerprint is a *silent stale-result* bug.  This rule statically
    derives the field sets of the spec-identity dataclasses and requires
    each field to be transitively consumed by the fingerprint sinks
    (``meta()`` / ``summary()`` / the run ledger's ``spec_fingerprint``)
    or named in :data:`repro.lint.dataflow.FINGERPRINT_EXEMPT`.
    """

    code = "REPRO006"
    summary = "spec field without a fingerprint decision"

    def check_project(self, project) -> Iterator[Finding]:
        from repro.lint.dataflow import fingerprint_partition

        for part in fingerprint_partition(project):
            module = part.module
            for name in part.undecided:
                yield finding_at(
                    module.path,
                    part.fields[name],
                    self.code,
                    f"field {part.class_name}.{name} is consumed by no "
                    "fingerprint sink (meta/summary/spec_fingerprint) and "
                    "is not exempted; a new field must either join the "
                    "fingerprint or be listed in FINGERPRINT_EXEMPT "
                    "(repro/lint/dataflow.py) as instrumentation-only",
                )
            for name in part.stale_exemptions:
                yield finding_at(
                    module.path,
                    part.fields[name],
                    self.code,
                    f"field {part.class_name}.{name} is exempted as "
                    "fingerprint-irrelevant but a fingerprint sink "
                    "consumes it; drop the stale FINGERPRINT_EXEMPT entry",
                )
            for name in part.unknown_exemptions:
                yield finding_at(
                    module.path,
                    part.classdef,
                    self.code,
                    f"FINGERPRINT_EXEMPT names {part.class_name}.{name} "
                    "but the class has no such field; drop the dead entry",
                )


class WorkerRaceRule(Rule):
    """REPRO007: no writes to module state from fork-pool workers.

    Functions handed to ``parallel_map`` / ``Pool.imap`` execute in
    forked worker processes; a write to module-level mutable state (or a
    closure cell) lands in the *worker's* copy and silently diverges
    from the parent — results must flow through return values.  The
    per-module call graph extends the check to everything a worker entry
    point reaches.  ``cache_counter(...)`` bindings are the sanctioned
    telemetry seams (merged explicitly, never part of a series).
    """

    code = "REPRO007"
    summary = "worker-reachable write to module-level state"

    _KIND_HINTS = {
        "rebind": "rebinding a module-level name",
        "mutate": "writing into module-level state",
        "mutate-call": "mutating module-level state in place",
        "nonlocal": "writing a closure cell",
    }

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        from repro.lint.dataflow import worker_state_writes

        for write in worker_state_writes(module.tree, module.path):
            hint = self._KIND_HINTS.get(write.kind, write.kind)
            yield module.finding(
                write.node,
                self.code,
                f"{hint} {write.name!r} in {write.via!r}, reachable from "
                f"worker entry point {write.entry!r}; fork-pool workers "
                "see private copies, so the write is lost or diverges "
                "across processes — return the value instead (allowed "
                "seams: cache_counter bindings)",
            )


class SeedDisciplineRule(Rule):
    """REPRO008: seeds come from ``derive_seed``, not arithmetic.

    ``seed + i`` collides across sweep axes and ``hash(...)`` is salted
    per process (PYTHONHASHSEED), so both break the machine-stable
    seed-derivation contract.  The rule taint-tracks one assignment
    level inside each scope and flags undisciplined expressions reaching
    a ``random.Random(...)`` construction or a ``seed=`` keyword.
    """

    code = "REPRO008"
    summary = "seed constructed by arithmetic or hash() instead of derive_seed"

    _WHY = {
        "mixing": (
            "arithmetic seed mixing collides across sweep axes; derive "
            "the stream with derive_seed(seed, *components) instead"
        ),
        "hash": (
            "hash() is salted per process (PYTHONHASHSEED) and is not "
            "machine-stable; use derive_seed(...) instead"
        ),
    }

    def _seed_sites(
        self, call: ast.Call, aliases: Dict[str, str]
    ) -> Iterator[ast.expr]:
        """The seed-valued argument expressions of ``call``."""
        qualified = resolve_dotted(call.func, aliases)
        if qualified == "random.Random":
            if call.args:
                yield call.args[0]
            for kw in call.keywords:
                if kw.arg in ("x", "seed"):
                    yield kw.value
        else:
            for kw in call.keywords:
                if kw.arg == "seed":
                    yield kw.value

    @staticmethod
    def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
        """The nodes of ``scope`` without descending into nested scopes."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue  # inner scopes get their own assignment map
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        from repro.lint.dataflow import single_assignments, tainted_seed_expr

        scopes: List[ast.AST] = [module.tree]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            assigned = single_assignments(scope)
            for node in self._walk_scope(scope):
                if not isinstance(node, ast.Call):
                    continue
                for site in self._seed_sites(node, module.aliases):
                    why = tainted_seed_expr(site, assigned)
                    if why is not None:
                        yield module.finding(
                            site, self.code, self._WHY[why]
                        )


class RegistryExhaustivenessRule(ProjectRule):
    """REPRO009: registered automata are contract-checked and exported.

    Every detector reachable via ``iter_registered_automata()`` and
    every timed implementation in the timed registry must have its
    ``detector:*``/``timed:*`` (and ``compiled:*``) entry in
    ``default_contract_subjects()`` and its class exported by the
    ``repro.api`` facade — a registry entry nobody sweeps is an automaton
    nobody checks.  The rule asks the *live* registries and only runs
    when the lint run actually covers them.
    """

    code = "REPRO009"
    summary = "registry entry missing from contract subjects or facade"

    _REGISTRY_SUFFIXES = ("detectors/registry.py", "timed/registry.py")

    def check_project(self, project) -> Iterator[Finding]:
        from repro.lint.dataflow import check_registry_exhaustiveness

        if not project.has_path_suffix(*self._REGISTRY_SUFFIXES):
            return
        yield from check_registry_exhaustiveness(code=self.code)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

ALL_RULES: Tuple[Rule, ...] = (
    WallClockRule(),
    UnseededRandomRule(),
    UnorderedIterationRule(),
    DeprecatedKwargRule(),
    MutableDefaultRule(),
    FingerprintCompletenessRule(),
    WorkerRaceRule(),
    SeedDisciplineRule(),
    RegistryExhaustivenessRule(),
)

#: code -> rule instance.
RULES_BY_CODE: Dict[str, Rule] = {rule.code: rule for rule in ALL_RULES}


def rule_codes() -> Sequence[str]:
    """Every AST rule code, sorted."""
    return sorted(RULES_BY_CODE)
