"""The perfect failure detector P as an AFD (Section 3.3, Algorithm 2).

Specification: T_P is the set of valid sequences t over
``I-hat ∪ O_P`` (outputs carry suspect sets S ⊆ Pi) such that

1. *(strong accuracy, safety)* for every prefix t_pre of t, every location
   i live in t_pre, and every event FD-P(S)_j in t_pre: i ∉ S — nobody is
   suspected before their crash event;
2. *(strong completeness, eventual)* there is a suffix of t in which every
   event FD-P(S)_j has ``faulty(t) ⊆ S``.
"""

from __future__ import annotations

from typing import FrozenSet, Sequence, Set

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton
from repro.core.afd import AFD, CheckResult, eventually_forever
from repro.core.validity import faulty_locations
from repro.detectors.base import CrashsetDetectorAutomaton, sorted_tuple
from repro.system.fault_pattern import is_crash

PERFECT_OUTPUT = "fd-p"


def perfect_output(location: int, suspects) -> Action:
    """The action ``FD-P(S)_location`` with S encoded as a sorted tuple."""
    return Action(PERFECT_OUTPUT, location, (sorted_tuple(suspects),))


class PerfectAutomaton(CrashsetDetectorAutomaton):
    """Algorithm 2: outputs the current crashset at every live location."""

    def __init__(self, locations: Sequence[int]):
        super().__init__(
            locations,
            PERFECT_OUTPUT,
            lambda location, crashset: (sorted_tuple(crashset),),
            name="FD-P",
        )


def _suspect_set_well_formed(action: Action, locations) -> bool:
    if len(action.payload) != 1:
        return False
    suspects = action.payload[0]
    if not isinstance(suspects, tuple):
        return False
    if list(suspects) != sorted(set(suspects)):
        return False
    return all(s in locations for s in suspects)


def check_no_premature_suspicion(t: Sequence[Action]) -> CheckResult:
    """Property (1): every suspect set is within the already-crashed set."""
    crashed: Set[int] = set()
    for k, a in enumerate(t):
        if is_crash(a):
            crashed.add(a.location)
            continue
        suspects = set(a.payload[0])
        premature = suspects - crashed
        if premature:
            return CheckResult.failure(
                f"event {a} at index {k} suspects live location(s) "
                f"{sorted(premature)} before their crash events"
            )
    return CheckResult.success()


class Perfect(AFD):
    """The perfect-failure-detector AFD specification."""

    def __init__(self, locations: Sequence[int]):
        super().__init__(locations, "P", PERFECT_OUTPUT)

    def well_formed_output(self, action: Action) -> bool:
        return _suspect_set_well_formed(action, self.locations)

    def extra_safety(self, t: Sequence[Action]) -> CheckResult:
        return check_no_premature_suspicion(t)

    def check_eventual(
        self, t: Sequence[Action], live: FrozenSet[int]
    ) -> CheckResult:
        faulty = faulty_locations(t)
        return eventually_forever(
            t,
            live,
            lambda a: faulty <= set(a.payload[0]),
            description="P strong completeness",
        )

    def automaton(self) -> Automaton:
        return PerfectAutomaton(self.locations)
