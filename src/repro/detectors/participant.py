"""The query-based *participant* failure detector (Section 10.1).

The participant detector is the paper's example of why query-based
interaction is weaker methodologically than the unilateral interaction of
AFDs: because queries flow from processes into the detector, the detector
can leak information about *non-crash* events.  The participant detector
outputs the same location ID to all queries at all times and guarantees
that the process whose ID is output has queried at least once — a fact
about process behavior, not about crashes.

Section 10.1 argues it is *representative* for consensus (each direction
of the reduction is implemented in
:mod:`repro.algorithms.participant_consensus`), whereas Theorem 21 shows
no AFD can be.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton, State
from repro.ioa.signature import FiniteActionSet, PredicateActionSet, Signature
from repro.system.fault_pattern import CRASH, crash_action

QUERY = "fd-query"
RESPONSE = "fd-response"


def query_action(location: int) -> Action:
    """The action with which the process at ``location`` queries."""
    return Action(QUERY, location)


def response_action(location: int, participant: int) -> Action:
    """The detector's response at ``location`` naming ``participant``."""
    return Action(RESPONSE, location, (participant,))


class ParticipantDetectorAutomaton(Automaton):
    """The participant failure detector.

    State: ``(chosen, pending, crashed)`` where ``chosen`` is the first
    querier's ID (or None), ``pending`` the locations with unanswered
    queries, and ``crashed`` the crashed locations.  The response at every
    location always names ``chosen`` — an ID guaranteed to have queried.
    """

    def __init__(self, locations: Sequence[int]):
        super().__init__("FD-participant")
        self.locations: Tuple[int, ...] = tuple(locations)
        self._signature = Signature(
            inputs=FiniteActionSet(
                tuple(crash_action(i) for i in self.locations)
                + tuple(query_action(i) for i in self.locations)
            ),
            outputs=PredicateActionSet(
                lambda a: (
                    a.name == RESPONSE and a.location in self.locations
                ),
                "fd-response(*)_i",
            ),
        )

    @property
    def signature(self) -> Signature:
        return self._signature

    def initial_state(self) -> State:
        return (None, frozenset(), frozenset())

    def apply(self, state: State, action: Action) -> State:
        chosen, pending, crashed = state
        if action.name == CRASH:
            return (chosen, pending, crashed | {action.location})
        if action.name == QUERY:
            if chosen is None:
                chosen = action.location
            return (chosen, pending | {action.location}, crashed)
        if action.name == RESPONSE:
            return (chosen, pending - {action.location}, crashed)
        return state

    def enabled_locally(self, state: State) -> Iterable[Action]:
        chosen, pending, crashed = state
        if chosen is None:
            return
        for i in sorted(pending - crashed):
            yield response_action(i, chosen)

    def tasks(self) -> Sequence[str]:
        return tuple(f"resp[{i}]" for i in self.locations)

    def task_of(self, action: Action) -> Optional[str]:
        if action.name == RESPONSE:
            return f"resp[{action.location}]"
        return None

    def enabled_in_task(self, state: State, task: str) -> Tuple[Action, ...]:
        chosen, pending, crashed = state
        if chosen is None:
            return ()
        for i in self.locations:
            if task == f"resp[{i}]":
                if i in pending and i not in crashed:
                    return (response_action(i, chosen),)
                return ()
        return ()

    # -- Specification ------------------------------------------------------

    @staticmethod
    def satisfies_participation(trace: Sequence[Action]) -> bool:
        """Every response names a location that queried before it, and all
        responses name the same location."""
        queried = set()
        named = set()
        for a in trace:
            if a.name == QUERY:
                queried.add(a.location)
            elif a.name == RESPONSE:
                participant = a.payload[0]
                if participant not in queried:
                    return False
                named.add(participant)
        return len(named) <= 1
