"""The strong (S) and eventually strong (◇S) failure detectors as AFDs.

Two of the eight detectors of Chandra and Toueg [5] (the paper notes all
eight are expressible as AFDs, Section 3.3).  Outputs carry suspect sets.

S (strong):
1. *(strong completeness, eventual)* eventually every output suspects
   every faulty location;
2. *(weak accuracy, whole-trace)* some live location is never suspected by
   any output in the entire trace.

◇S (eventually strong):
1. strong completeness, as above;
2. *(eventual weak accuracy)* some live location is eventually never
   suspected.

Note weak accuracy is a whole-trace (not prefix-decidable) property: a
finite prefix cannot reveal which live location will stay unsuspected, so
it is checked in the limit checker rather than as ``extra_safety``.
"""

from __future__ import annotations

from typing import FrozenSet, Sequence

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton
from repro.core.afd import AFD, CheckResult, eventually_forever
from repro.core.validity import faulty_locations
from repro.detectors.base import CrashsetDetectorAutomaton, sorted_tuple
from repro.detectors.perfect import _suspect_set_well_formed
from repro.system.fault_pattern import is_crash

STRONG_OUTPUT = "fd-s"
EVENTUALLY_STRONG_OUTPUT = "fd-evs"


def strong_output(location: int, suspects) -> Action:
    """The action ``FD-S(S)_location``."""
    return Action(STRONG_OUTPUT, location, (sorted_tuple(suspects),))


def eventually_strong_output(location: int, suspects) -> Action:
    """The action ``FD-◇S(S)_location``."""
    return Action(
        EVENTUALLY_STRONG_OUTPUT, location, (sorted_tuple(suspects),)
    )


class StrongAutomaton(CrashsetDetectorAutomaton):
    """Outputs the crashset: trivially never suspects live locations."""

    def __init__(self, locations: Sequence[int]):
        super().__init__(
            locations,
            STRONG_OUTPUT,
            lambda location, crashset: (sorted_tuple(crashset),),
            name="FD-S",
        )


class EventuallyStrongAutomaton(CrashsetDetectorAutomaton):
    """The same generator under the ◇S output vocabulary."""

    def __init__(self, locations: Sequence[int]):
        super().__init__(
            locations,
            EVENTUALLY_STRONG_OUTPUT,
            lambda location, crashset: (sorted_tuple(crashset),),
            name="FD-EvS",
        )


class Strong(AFD):
    """The strong failure detector S."""

    def __init__(self, locations: Sequence[int]):
        super().__init__(locations, "S", STRONG_OUTPUT)

    def well_formed_output(self, action: Action) -> bool:
        return _suspect_set_well_formed(action, self.locations)

    def check_eventual(
        self, t: Sequence[Action], live: FrozenSet[int]
    ) -> CheckResult:
        faulty = faulty_locations(t)
        completeness = eventually_forever(
            t,
            live,
            lambda a: faulty <= set(a.payload[0]),
            description="S strong completeness",
        )
        if not live:
            return completeness
        never_suspected = [
            l
            for l in sorted(live)
            if not any(
                not is_crash(a) and l in a.payload[0] for a in t
            )
        ]
        if never_suspected:
            accuracy = CheckResult.success()
        else:
            accuracy = CheckResult.failure(
                "S weak accuracy: every live location is suspected at "
                "least once"
            )
        return completeness.merge(accuracy)

    def automaton(self) -> Automaton:
        return StrongAutomaton(self.locations)


class EventuallyStrong(AFD):
    """The eventually strong failure detector ◇S."""

    def __init__(self, locations: Sequence[int]):
        super().__init__(locations, "EvS", EVENTUALLY_STRONG_OUTPUT)

    def well_formed_output(self, action: Action) -> bool:
        return _suspect_set_well_formed(action, self.locations)

    def check_eventual(
        self, t: Sequence[Action], live: FrozenSet[int]
    ) -> CheckResult:
        faulty = faulty_locations(t)
        completeness = eventually_forever(
            t,
            live,
            lambda a: faulty <= set(a.payload[0]),
            description="◇S strong completeness",
        )
        if not live:
            return completeness
        failures = []
        for candidate in sorted(live):
            verdict = eventually_forever(
                t,
                live,
                lambda a, l=candidate: l not in a.payload[0],
                description=f"◇S eventual weak accuracy on {candidate}",
            )
            if verdict:
                return completeness.merge(verdict)
            failures.extend(verdict.reasons)
        return completeness.merge(
            CheckResult.failure(
                "◇S eventual weak accuracy: no live location is eventually "
                "never suspected",
                *failures,
            )
        )

    def automaton(self) -> Automaton:
        return EventuallyStrongAutomaton(self.locations)
