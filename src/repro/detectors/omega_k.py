"""The Omega^k failure detector as an AFD.

Omega^k (Neiger [23]) generalizes Omega: each output is a set of k
location IDs, and the specification is:

* if live(t) is nonempty, there exists a set L of k IDs with
  ``L ∩ live(t) != ∅`` and a suffix of t in which every output at a live
  location equals L.

Omega^1 coincides with Omega up to the payload encoding.

The generator outputs the first k IDs of ``sorted(Pi \\ crashset)``,
padded (when fewer than k remain) with the largest crashed IDs; in the
limit the crashset equals faulty(t), so the output stabilizes on a set
containing ``min(live)``.
"""

from __future__ import annotations

from typing import FrozenSet, Sequence

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton
from repro.core.afd import AFD, CheckResult, eventually_forever
from repro.detectors.base import CrashsetDetectorAutomaton, sorted_tuple
from repro.system.fault_pattern import is_crash

OMEGA_K_OUTPUT = "fd-omega-k"


def omega_k_output(location: int, leaders) -> Action:
    """The action ``FD-Omega^k(L)_location``."""
    return Action(OMEGA_K_OUTPUT, location, (sorted_tuple(leaders),))


def _padded_leader_set(locations, crashset: FrozenSet[int], k: int):
    remaining = sorted(i for i in locations if i not in crashset)
    if len(remaining) >= k:
        return tuple(remaining[:k])
    pad = sorted(
        (i for i in locations if i in crashset), reverse=True
    )[: k - len(remaining)]
    return sorted_tuple(remaining + pad)


class OmegaKAutomaton(CrashsetDetectorAutomaton):
    """Outputs the first k uncrashed IDs (padded with crashed IDs)."""

    def __init__(self, locations: Sequence[int], k: int):
        locations = tuple(locations)
        if not 1 <= k <= len(locations):
            raise ValueError(f"k must be in [1, {len(locations)}], got {k}")
        self.k = k
        super().__init__(
            locations,
            OMEGA_K_OUTPUT,
            lambda location, crashset: (
                _padded_leader_set(locations, crashset, k),
            ),
            name=f"FD-Omega^{k}",
        )


class OmegaK(AFD):
    """The Omega^k AFD specification."""

    def __init__(self, locations: Sequence[int], k: int):
        locations = tuple(locations)
        if not 1 <= k <= len(locations):
            raise ValueError(f"k must be in [1, {len(locations)}], got {k}")
        super().__init__(locations, f"Omega^{k}", OMEGA_K_OUTPUT)
        self.k = k

    def well_formed_output(self, action: Action) -> bool:
        if len(action.payload) != 1:
            return False
        leaders = action.payload[0]
        if not isinstance(leaders, tuple) or len(leaders) != self.k:
            return False
        if list(leaders) != sorted(set(leaders)):
            return False
        return all(l in self.locations for l in leaders)

    def check_eventual(
        self, t: Sequence[Action], live: FrozenSet[int]
    ) -> CheckResult:
        if not live:
            return CheckResult.success()
        candidates = {
            a.payload[0] for a in t if not is_crash(a)
        }
        failures = []
        for candidate in sorted(candidates):
            if not set(candidate) & live:
                continue
            verdict = eventually_forever(
                t,
                live,
                lambda a, L=candidate: (
                    a.location not in live or a.payload[0] == L
                ),
                description=f"Omega^k stabilization on {candidate}",
            )
            if verdict:
                return verdict
            failures.extend(verdict.reasons)
        return CheckResult.failure(
            "no k-set with a live member is eventually the permanent "
            "output at live locations",
            *failures,
        )

    def automaton(self) -> Automaton:
        return OmegaKAutomaton(self.locations, self.k)
