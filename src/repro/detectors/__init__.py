"""The AFD zoo (Section 3.3) and non-AFD counterexamples (Sections 3.4, 10.1).

Each detector module provides the AFD specification (a subclass of
:class:`repro.core.afd.AFD` with checkers for its trace set T_D) and the
canonical generator automaton in the style of the paper's Algorithms 1–2.
"""

from repro.detectors.base import (
    CrashsetDetectorAutomaton,
    RenamedDetectorAutomaton,
)
from repro.detectors.omega import Omega, OmegaAutomaton
from repro.detectors.perfect import Perfect, PerfectAutomaton
from repro.detectors.eventually_perfect import (
    EventuallyPerfect,
    EventuallyPerfectAutomaton,
)
from repro.detectors.quorum import Sigma, SigmaAutomaton
from repro.detectors.anti_omega import AntiOmega, AntiOmegaAutomaton
from repro.detectors.omega_k import OmegaK, OmegaKAutomaton
from repro.detectors.psi_k import PsiK, PsiKAutomaton
from repro.detectors.weak import (
    EventuallyQuasi,
    EventuallyQuasiAutomaton,
    EventuallyWeak,
    EventuallyWeakAutomaton,
    Quasi,
    QuasiAutomaton,
    Weak,
    WeakAutomaton,
)
from repro.detectors.strong import (
    EventuallyStrong,
    EventuallyStrongAutomaton,
    Strong,
    StrongAutomaton,
)
from repro.detectors.marabout import MaraboutSpec, refute_marabout_automaton
from repro.detectors.participant import (
    ParticipantDetectorAutomaton,
    query_action,
    response_action,
)
from repro.detectors.registry import (
    ZOO,
    known_reductions,
    make_detector,
)

__all__ = [
    "CrashsetDetectorAutomaton",
    "RenamedDetectorAutomaton",
    "Omega",
    "OmegaAutomaton",
    "Perfect",
    "PerfectAutomaton",
    "EventuallyPerfect",
    "EventuallyPerfectAutomaton",
    "Sigma",
    "SigmaAutomaton",
    "AntiOmega",
    "AntiOmegaAutomaton",
    "OmegaK",
    "OmegaKAutomaton",
    "PsiK",
    "PsiKAutomaton",
    "Strong",
    "StrongAutomaton",
    "Quasi",
    "QuasiAutomaton",
    "Weak",
    "WeakAutomaton",
    "EventuallyQuasi",
    "EventuallyQuasiAutomaton",
    "EventuallyWeak",
    "EventuallyWeakAutomaton",
    "EventuallyStrong",
    "EventuallyStrongAutomaton",
    "MaraboutSpec",
    "refute_marabout_automaton",
    "ParticipantDetectorAutomaton",
    "query_action",
    "response_action",
    "ZOO",
    "known_reductions",
    "make_detector",
]
