"""The eventually perfect failure detector ◇P as an AFD (Section 3.3).

Specification: T_◇P is the set of valid sequences t over
``I-hat ∪ O_◇P`` (outputs carry suspect sets) such that

1. *(eventual strong accuracy)* there is a suffix t_trust of t in which no
   event FD-◇P(S)_j suspects a live location (S ∩ live(t) = ∅);
2. *(strong completeness)* there is a suffix t_suspect of t in which every
   event FD-◇P(S)_j has ``faulty(t) ⊆ S``.

The paper obtains a generator for ◇P by renaming every ``FD-P(S)_i``
action of Algorithm 2 to ``FD-◇P(S)_i``; :class:`EventuallyPerfectAutomaton`
is that renamed automaton (its fair traces satisfy strictly more than
required, which is allowed: fair traces need only be a *subset* of T_◇P).
"""

from __future__ import annotations

from typing import FrozenSet, Sequence

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton
from repro.core.afd import AFD, CheckResult, eventually_forever
from repro.core.validity import faulty_locations
from repro.detectors.base import CrashsetDetectorAutomaton, sorted_tuple
from repro.detectors.perfect import _suspect_set_well_formed

EVENTUALLY_PERFECT_OUTPUT = "fd-evp"


def eventually_perfect_output(location: int, suspects) -> Action:
    """The action ``FD-◇P(S)_location``."""
    return Action(
        EVENTUALLY_PERFECT_OUTPUT, location, (sorted_tuple(suspects),)
    )


class EventuallyPerfectAutomaton(CrashsetDetectorAutomaton):
    """Algorithm 2 with outputs renamed to the ◇P vocabulary."""

    def __init__(self, locations: Sequence[int]):
        super().__init__(
            locations,
            EVENTUALLY_PERFECT_OUTPUT,
            lambda location, crashset: (sorted_tuple(crashset),),
            name="FD-EvP",
        )


class EventuallyPerfect(AFD):
    """The eventually-perfect-failure-detector AFD specification."""

    def __init__(self, locations: Sequence[int]):
        super().__init__(locations, "EvP", EVENTUALLY_PERFECT_OUTPUT)

    def well_formed_output(self, action: Action) -> bool:
        return _suspect_set_well_formed(action, self.locations)

    def check_eventual(
        self, t: Sequence[Action], live: FrozenSet[int]
    ) -> CheckResult:
        faulty = faulty_locations(t)
        accuracy = eventually_forever(
            t,
            live,
            lambda a: not (set(a.payload[0]) & live),
            description="◇P eventual strong accuracy",
        )
        completeness = eventually_forever(
            t,
            live,
            lambda a: faulty <= set(a.payload[0]),
            description="◇P strong completeness",
        )
        return accuracy.merge(completeness)

    def automaton(self) -> Automaton:
        return EventuallyPerfectAutomaton(self.locations)
