"""The quorum failure detector Sigma as an AFD.

Sigma (Delporte-Gallet et al. [8]) outputs *quorums* — subsets of Pi —
subject to:

1. *(intersection, safety)* every two quorums output anywhere, at any two
   points of the trace, intersect;
2. *(completeness, eventual)* there is a suffix in which every quorum
   output at a live location contains only live locations.

The paper lists "Sigma and other quorum failure detectors" among the
detectors expressible as AFDs (Section 1 / Section 3.3).

The generator outputs ``Pi \\ crashset``.  Crashsets grow monotonically,
so any two generated quorums are nested complements, and the smaller one is
nonempty because the emitting location is not in its own crashset — hence
the intersection property holds in every fair trace.
"""

from __future__ import annotations

from typing import FrozenSet, Sequence

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton
from repro.core.afd import AFD, CheckResult, eventually_forever
from repro.detectors.base import CrashsetDetectorAutomaton, sorted_tuple
from repro.detectors.perfect import _suspect_set_well_formed
from repro.system.fault_pattern import is_crash

SIGMA_OUTPUT = "fd-sigma"


def sigma_output(location: int, quorum) -> Action:
    """The action ``FD-Sigma(Q)_location``."""
    return Action(SIGMA_OUTPUT, location, (sorted_tuple(quorum),))


class SigmaAutomaton(CrashsetDetectorAutomaton):
    """Outputs the complement of the crashset as the quorum."""

    def __init__(self, locations: Sequence[int]):
        def value(location: int, crashset: FrozenSet[int]):
            return (sorted_tuple(i for i in locations if i not in crashset),)

        super().__init__(locations, SIGMA_OUTPUT, value, name="FD-Sigma")


class Sigma(AFD):
    """The Sigma (quorum) AFD specification."""

    def __init__(self, locations: Sequence[int]):
        super().__init__(locations, "Sigma", SIGMA_OUTPUT)

    def well_formed_output(self, action: Action) -> bool:
        if not _suspect_set_well_formed(action, self.locations):
            return False
        return len(action.payload[0]) > 0  # quorums are nonempty

    def extra_safety(self, t: Sequence[Action]) -> CheckResult:
        quorums = [
            (k, frozenset(a.payload[0]))
            for k, a in enumerate(t)
            if not is_crash(a)
        ]
        for x in range(len(quorums)):
            for y in range(x + 1, len(quorums)):
                kx, qx = quorums[x]
                ky, qy = quorums[y]
                if not (qx & qy):
                    return CheckResult.failure(
                        f"quorums at indices {kx} and {ky} do not "
                        f"intersect: {sorted(qx)} vs {sorted(qy)}"
                    )
        return CheckResult.success()

    def check_eventual(
        self, t: Sequence[Action], live: FrozenSet[int]
    ) -> CheckResult:
        return eventually_forever(
            t,
            live,
            lambda a: (
                a.location not in live or set(a.payload[0]) <= live
            ),
            description="Sigma completeness (eventually quorums ⊆ live)",
        )

    def automaton(self) -> Automaton:
        return SigmaAutomaton(self.locations)
