"""The weak-completeness detectors of Chandra and Toueg [5]: Q, W, ◇Q, ◇W.

The paper notes all eight detectors of [5] are expressible as AFDs
(Section 3.3); :mod:`repro.detectors.perfect` and
:mod:`repro.detectors.strong` cover the strong-completeness four (P, ◇P,
S, ◇S); this module covers the weak-completeness four:

* **Q**  — weak completeness + strong accuracy;
* **W**  — weak completeness + weak accuracy;
* **◇Q** — weak completeness + eventual strong accuracy;
* **◇W** — weak completeness + eventual weak accuracy.

*Weak completeness*: eventually, every faulty location is permanently
suspected by **some** live location (strong: by *every* live location).

The generators make weak completeness visible: only the smallest
uncrashed location reports the crashset; everyone else reports the empty
set.  Their traces are genuinely outside T_P's completeness guarantee,
which is what makes the completeness-boosting reduction
(:mod:`repro.algorithms.completeness_boost`) non-trivial.
"""

from __future__ import annotations

from typing import FrozenSet, Sequence

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton
from repro.core.afd import AFD, CheckResult, eventually_forever
from repro.core.validity import faulty_locations
from repro.detectors.base import CrashsetDetectorAutomaton, sorted_tuple
from repro.detectors.perfect import (
    _suspect_set_well_formed,
    check_no_premature_suspicion,
)
from repro.system.fault_pattern import is_crash

QUASI_OUTPUT = "fd-q"
WEAK_OUTPUT = "fd-w"
EVENTUALLY_QUASI_OUTPUT = "fd-evq"
EVENTUALLY_WEAK_OUTPUT = "fd-evw"


def weak_output(location: int, suspects) -> Action:
    """The action ``FD-W(S)_location``."""
    return Action(WEAK_OUTPUT, location, (sorted_tuple(suspects),))


def quasi_output(location: int, suspects) -> Action:
    """The action ``FD-Q(S)_location``."""
    return Action(QUASI_OUTPUT, location, (sorted_tuple(suspects),))


def _reporter_value(locations):
    """Only min(Pi \\ crashset) reports the crashset; others report {}."""

    def value(location: int, crashset: FrozenSet[int]):
        remaining = [i for i in locations if i not in crashset]
        if location == min(remaining):
            return (sorted_tuple(crashset),)
        return ((),)

    return value


class _SingleReporterAutomaton(CrashsetDetectorAutomaton):
    """Shared generator shape for the weak-completeness detectors."""

    def __init__(self, locations: Sequence[int], output_name: str, name: str):
        locations = tuple(locations)
        super().__init__(
            locations, output_name, _reporter_value(locations), name=name
        )


class QuasiAutomaton(_SingleReporterAutomaton):
    def __init__(self, locations: Sequence[int]):
        super().__init__(locations, QUASI_OUTPUT, "FD-Q")


class WeakAutomaton(_SingleReporterAutomaton):
    def __init__(self, locations: Sequence[int]):
        super().__init__(locations, WEAK_OUTPUT, "FD-W")


class EventuallyQuasiAutomaton(_SingleReporterAutomaton):
    def __init__(self, locations: Sequence[int]):
        super().__init__(locations, EVENTUALLY_QUASI_OUTPUT, "FD-EvQ")


class EventuallyWeakAutomaton(_SingleReporterAutomaton):
    def __init__(self, locations: Sequence[int]):
        super().__init__(locations, EVENTUALLY_WEAK_OUTPUT, "FD-EvW")


def check_weak_completeness(
    afd: AFD, t: Sequence[Action], live: FrozenSet[int]
) -> CheckResult:
    """Eventually, each faulty j is permanently suspected by some live i."""
    faulty = faulty_locations(t)
    for j in sorted(faulty):
        witnesses = []
        found = False
        for i in sorted(live):
            verdict = eventually_forever(
                t,
                frozenset({i}),
                lambda a, i=i, j=j: (
                    a.location != i or j in a.payload[0]
                ),
                description=f"weak completeness: {i} suspects {j}",
            )
            if verdict:
                found = True
                break
            witnesses.extend(verdict.reasons)
        if not found:
            return CheckResult.failure(
                f"no live location eventually permanently suspects "
                f"faulty location {j}",
                *witnesses,
            )
    return CheckResult.success()


def check_weak_accuracy(
    t: Sequence[Action], live: FrozenSet[int], detector_name: str
) -> CheckResult:
    """Some live location is never suspected, anywhere, in the trace."""
    if not live:
        return CheckResult.success()
    for l in sorted(live):
        if not any(
            not is_crash(a) and l in a.payload[0] for a in t
        ):
            return CheckResult.success()
    return CheckResult.failure(
        f"{detector_name} weak accuracy: every live location is "
        "suspected at least once"
    )


def check_eventual_weak_accuracy(
    t: Sequence[Action], live: FrozenSet[int], detector_name: str
) -> CheckResult:
    """Some live location is eventually never suspected."""
    if not live:
        return CheckResult.success()
    failures = []
    for candidate in sorted(live):
        verdict = eventually_forever(
            t,
            live,
            lambda a, l=candidate: l not in a.payload[0],
            description=f"{detector_name} eventual weak accuracy on "
            f"{candidate}",
        )
        if verdict:
            return verdict
        failures.extend(verdict.reasons)
    return CheckResult.failure(
        f"{detector_name}: no live location is eventually never suspected",
        *failures,
    )


class _SuspectSetAFD(AFD):
    """Shared vocabulary plumbing for the four detectors."""

    def well_formed_output(self, action: Action) -> bool:
        return _suspect_set_well_formed(action, self.locations)


class Quasi(_SuspectSetAFD):
    """Q: weak completeness + strong accuracy."""

    def __init__(self, locations: Sequence[int]):
        super().__init__(locations, "Q", QUASI_OUTPUT)

    def extra_safety(self, t: Sequence[Action]) -> CheckResult:
        return check_no_premature_suspicion(t)

    def check_eventual(
        self, t: Sequence[Action], live: FrozenSet[int]
    ) -> CheckResult:
        return check_weak_completeness(self, t, live)

    def automaton(self) -> Automaton:
        return QuasiAutomaton(self.locations)


class Weak(_SuspectSetAFD):
    """W: weak completeness + weak accuracy."""

    def __init__(self, locations: Sequence[int]):
        super().__init__(locations, "W", WEAK_OUTPUT)

    def check_eventual(
        self, t: Sequence[Action], live: FrozenSet[int]
    ) -> CheckResult:
        return check_weak_completeness(self, t, live).merge(
            check_weak_accuracy(t, live, "W")
        )

    def automaton(self) -> Automaton:
        return WeakAutomaton(self.locations)


class EventuallyQuasi(_SuspectSetAFD):
    """◇Q: weak completeness + eventual strong accuracy."""

    def __init__(self, locations: Sequence[int]):
        super().__init__(locations, "EvQ", EVENTUALLY_QUASI_OUTPUT)

    def check_eventual(
        self, t: Sequence[Action], live: FrozenSet[int]
    ) -> CheckResult:
        accuracy = eventually_forever(
            t,
            live,
            lambda a: not (set(a.payload[0]) & live),
            description="◇Q eventual strong accuracy",
        )
        return check_weak_completeness(self, t, live).merge(accuracy)

    def automaton(self) -> Automaton:
        return EventuallyQuasiAutomaton(self.locations)


class EventuallyWeak(_SuspectSetAFD):
    """◇W: weak completeness + eventual weak accuracy."""

    def __init__(self, locations: Sequence[int]):
        super().__init__(locations, "EvW", EVENTUALLY_WEAK_OUTPUT)

    def check_eventual(
        self, t: Sequence[Action], live: FrozenSet[int]
    ) -> CheckResult:
        return check_weak_completeness(self, t, live).merge(
            check_eventual_weak_accuracy(t, live, "◇W")
        )

    def automaton(self) -> Automaton:
        return EventuallyWeakAutomaton(self.locations)
