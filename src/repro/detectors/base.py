"""Shared machinery for failure-detector generator automata.

The paper's Algorithm 1 (FD-Omega) and Algorithm 2 (FD-P) share one shape:
the automaton tracks the set of crashed locations (``crashset``), and at
each live location a dedicated task outputs a value computed from
``crashset``.  :class:`CrashsetDetectorAutomaton` captures that shape; each
zoo detector supplies the output-value function.

:class:`RenamedDetectorAutomaton` wraps any detector automaton and renames
its output actions through an :class:`~repro.core.renaming.Renaming`,
yielding the generator for a renamed AFD D' (Section 5.3).
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Hashable, Iterable, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton, State
from repro.ioa.signature import (
    FiniteActionSet,
    PredicateActionSet,
    Signature,
)
from repro.core.renaming import Renaming
from repro.system.fault_pattern import CRASH, crash_action


class CrashsetDetectorAutomaton(Automaton):
    """A failure-detector automaton in the style of Algorithms 1 and 2.

    State: the frozenset of locations whose crash events have occurred.
    For each location i there is a task ``out[i]`` whose single enabled
    action (when i is not in the crashset) outputs
    ``value_fn(i, crashset)`` at i.

    Parameters
    ----------
    locations:
        The location set Pi.
    output_name:
        The action name of outputs (e.g. ``"fd-omega"``).
    value_fn:
        ``value_fn(location, crashset) -> payload tuple`` for the output at
        that location given the current crashset.  Must be deterministic,
        making the automaton task deterministic (Section 2.5).
    """

    def __init__(
        self,
        locations: Sequence[int],
        output_name: str,
        value_fn: Callable[[int, FrozenSet[int]], Tuple[Hashable, ...]],
        name: str = "",
    ):
        super().__init__(name or f"FD-{output_name}")
        self.locations: Tuple[int, ...] = tuple(locations)
        self.output_name = output_name
        self._value_fn = value_fn
        self._signature = Signature(
            inputs=FiniteActionSet(
                tuple(crash_action(i) for i in self.locations)
            ),
            outputs=PredicateActionSet(
                lambda a: (
                    a.name == output_name and a.location in self.locations
                ),
                f"{output_name}(*)_i",
            ),
        )

    @property
    def signature(self) -> Signature:
        return self._signature

    def initial_state(self) -> State:
        return frozenset()

    def output_at(self, location: int, crashset: FrozenSet[int]) -> Action:
        """The output action currently enabled at ``location``."""
        return Action(
            self.output_name, location, self._value_fn(location, crashset)
        )

    def apply(self, state: State, action: Action) -> State:
        if action.name == CRASH:
            return state | {action.location}
        return state  # outputs have no effect on the crashset

    def enabled_locally(self, state: State) -> Iterable[Action]:
        for i in self.locations:
            if i not in state:
                yield self.output_at(i, state)

    def enabled(self, state: State, action: Action) -> bool:
        if self._signature.is_input(action):
            return True
        if action.name != self.output_name:
            return False
        i = action.location
        if i not in self.locations or i in state:
            return False
        return action == self.output_at(i, state)

    def tasks(self) -> Sequence[str]:
        return tuple(f"out[{i}]" for i in self.locations)

    def task_of(self, action: Action) -> Optional[str]:
        if action.name == self.output_name:
            return f"out[{action.location}]"
        return None

    def enabled_in_task(self, state: State, task: str) -> Tuple[Action, ...]:
        for i in self.locations:
            if task == f"out[{i}]":
                if i in state:
                    return ()
                return (self.output_at(i, state),)
        return ()


class RenamedDetectorAutomaton(Automaton):
    """A detector automaton with outputs renamed through r_IO.

    The wrapped automaton's fair traces lie in T_D; this automaton's fair
    traces lie in T_D' for the renamed AFD D'.
    """

    def __init__(self, base: Automaton, renaming: Renaming):
        super().__init__(f"renamed({base.name})")
        self.base = base
        self.renaming = renaming
        base_sig = base.signature
        self._signature = Signature(
            inputs=base_sig.inputs,
            outputs=PredicateActionSet(
                lambda a: (
                    renaming.covers_renamed(a)
                    and renaming.invert(a) in base_sig.outputs
                ),
                f"renamed outputs of {base.name}",
            ),
            internals=base_sig.internals,
        )

    @property
    def signature(self) -> Signature:
        return self._signature

    def initial_state(self) -> State:
        return self.base.initial_state()

    def _demangle(self, action: Action) -> Action:
        if self.renaming.covers_renamed(action):
            inverted = self.renaming.invert(action)
            if inverted in self.base.signature.outputs:
                return inverted
        return action

    def apply(self, state: State, action: Action) -> State:
        return self.base.apply(state, self._demangle(action))

    def enabled(self, state: State, action: Action) -> bool:
        if self._signature.is_input(action):
            return True
        demangled = self._demangle(action)
        if demangled is action:
            return False
        return self.base.enabled(state, demangled)

    def enabled_locally(self, state: State) -> Iterable[Action]:
        for action in self.base.enabled_locally(state):
            yield self.renaming.apply(action)

    def tasks(self) -> Sequence[str]:
        return self.base.tasks()

    def task_of(self, action: Action) -> Optional[str]:
        return self.base.task_of(self._demangle(action))

    def enabled_in_task(self, state: State, task: str) -> Tuple[Action, ...]:
        return tuple(
            self.renaming.apply(a)
            for a in self.base.enabled_in_task(state, task)
        )


def sorted_tuple(items: Iterable[int]) -> Tuple[int, ...]:
    """Canonical encoding of a set of locations as a payload element."""
    return tuple(sorted(items))
