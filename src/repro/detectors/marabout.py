"""The Marabout failure detector: a failure detector that is NOT an AFD.

Marabout (Guerraoui [14]) *always* outputs the set of faulty locations —
including before any crash has occurred.  Section 3.4 of the paper: it
"cannot be specified as an AFD because no automaton can 'predict' the set
of faulty processes prior to any crash events"; recall the definition of a
problem (Section 3.1) requires some automaton whose fair traces lie inside
the trace set.

:class:`MaraboutSpec` provides the trace checker (every output's payload
must equal ``faulty(t)``), and :func:`refute_marabout_automaton`
demonstrates the impossibility constructively: given *any* deterministic
candidate automaton, it builds a fault pattern on which the candidate's
fair trace violates the specification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton
from repro.ioa.executions import Trace
from repro.ioa.scheduler import Injection, Scheduler
from repro.core.validity import faulty_locations
from repro.detectors.base import sorted_tuple
from repro.system.fault_pattern import is_crash

MARABOUT_OUTPUT = "fd-marabout"


def marabout_output(location: int, faulty) -> Action:
    """The action ``FD-Marabout(F)_location``."""
    return Action(MARABOUT_OUTPUT, location, (sorted_tuple(faulty),))


class MaraboutSpec:
    """The Marabout trace set: every output names exactly ``faulty(t)``."""

    def __init__(self, locations: Sequence[int]):
        self.locations: Tuple[int, ...] = tuple(locations)

    def accepts(self, t: Sequence[Action]) -> bool:
        """Whether every output event carries exactly faulty(t)."""
        faulty = sorted_tuple(faulty_locations(t))
        return all(
            is_crash(a) or a.payload == (faulty,) for a in t
        )

    def first_violation(self, t: Sequence[Action]) -> Optional[int]:
        """Index of the first output event not naming faulty(t), if any."""
        faulty = sorted_tuple(faulty_locations(t))
        for k, a in enumerate(t):
            if not is_crash(a) and a.payload != (faulty,):
                return k
        return None


@dataclass
class MaraboutRefutation:
    """Evidence that a candidate automaton does not implement Marabout."""

    reason: str
    trace: List[Action]
    fault_pattern_note: str


def refute_marabout_automaton(
    candidate: Automaton,
    locations: Sequence[int],
    max_steps: int = 200,
) -> MaraboutRefutation:
    """Build a fault pattern on which ``candidate`` violates Marabout.

    Strategy (the paper's prediction argument, made executable):

    1. run the candidate crash-free until its first output event;
       if it never outputs, validity is violated at live locations;
    2. let S0 be the payload of that first output;
       * if S0 is empty, replay the same prefix and *then* crash some
         location i: faulty(t) = {i} but the trace already contains an
         output naming the empty set;
       * if S0 is nonempty, keep the run crash-free: faulty(t) = ∅ but the
         trace contains an output naming S0.

    Works for any candidate whose runs are deterministic under the
    round-robin scheduler (all our automata are).
    """
    locations = tuple(locations)
    scheduler = Scheduler()
    crash_free = scheduler.run(candidate, max_steps=max_steps)
    outputs = [a for a in crash_free.actions if not is_crash(a)]
    if not outputs:
        return MaraboutRefutation(
            reason=(
                "candidate produced no output in a crash-free run of "
                f"{max_steps} steps: validity requires infinitely many "
                "outputs at live locations"
            ),
            trace=list(crash_free.actions),
            fault_pattern_note="crash-free",
        )
    first = outputs[0]
    s0 = set(first.payload[0]) if first.payload else set()
    spec = MaraboutSpec(locations)
    if s0:
        # Crash-free run: faulty = empty, yet S0 was output.
        trace = list(crash_free.actions)
        assert not spec.accepts(trace)
        return MaraboutRefutation(
            reason=(
                f"in a crash-free run the candidate output {sorted(s0)} "
                "as the faulty set, but faulty(t) = {} in that run"
            ),
            trace=trace,
            fault_pattern_note="crash-free",
        )
    # S0 empty: replay the prefix up to the first output, then crash someone.
    first_output_step = next(
        k for k, a in enumerate(crash_free.actions) if not is_crash(a)
    )
    victim = locations[0]
    scheduler2 = Scheduler()
    with_crash = scheduler2.run(
        candidate,
        max_steps=max_steps,
        injections=[
            Injection(first_output_step + 1, Action("crash", victim))
        ],
    )
    trace = list(with_crash.actions)
    assert not spec.accepts(trace), (
        "candidate unexpectedly satisfied Marabout; "
        "the prediction argument requires determinism"
    )
    return MaraboutRefutation(
        reason=(
            f"the candidate output the empty faulty set before any crash; "
            f"crashing location {victim} immediately afterwards makes "
            f"faulty(t) = {{{victim}}}, contradicting that output"
        ),
        trace=trace,
        fault_pattern_note=f"crash {victim} after the first output",
    )
