"""Registry of zoo detectors and the known ⪰ reductions among them.

The reductions below are the classical strength relationships, each
witnessed by a per-event relay transformation
(:mod:`repro.algorithms.relay`).  Together with self-implementability
(Algorithm 3) they generate the AFD hierarchy explored in
:mod:`repro.analysis.hierarchy` and experiments E7/E8.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton
from repro.core.afd import AFD
from repro.core.ordering import Reduction
from repro.detectors.anti_omega import ANTI_OMEGA_OUTPUT, AntiOmega
from repro.detectors.base import sorted_tuple
from repro.detectors.eventually_perfect import (
    EVENTUALLY_PERFECT_OUTPUT,
    EventuallyPerfect,
)
from repro.detectors.omega import OMEGA_OUTPUT, Omega
from repro.detectors.omega_k import OMEGA_K_OUTPUT, OmegaK, _padded_leader_set
from repro.detectors.perfect import PERFECT_OUTPUT, Perfect
from repro.detectors.psi_k import PSI_K_OUTPUT, PsiK
from repro.detectors.quorum import SIGMA_OUTPUT, Sigma
from repro.detectors.strong import (
    EVENTUALLY_STRONG_OUTPUT,
    STRONG_OUTPUT,
    EventuallyStrong,
    Strong,
)
from repro.detectors.weak import (
    EVENTUALLY_QUASI_OUTPUT,
    EVENTUALLY_WEAK_OUTPUT,
    QUASI_OUTPUT,
    WEAK_OUTPUT,
    EventuallyQuasi,
    EventuallyWeak,
    Quasi,
    Weak,
)

#: ``ZOO[name]`` builds the named detector over a location set.  The
#: parameterized families are registered at representative k values.
ZOO: Dict[str, Callable[[Sequence[int]], AFD]] = {
    "Omega": Omega,
    "P": Perfect,
    "EvP": EventuallyPerfect,
    "Sigma": Sigma,
    "antiOmega": AntiOmega,
    "S": Strong,
    "EvS": EventuallyStrong,
    "Q": Quasi,
    "W": Weak,
    "EvQ": EventuallyQuasi,
    "EvW": EventuallyWeak,
    "Omega^1": lambda locs: OmegaK(locs, 1),
    "Omega^2": lambda locs: OmegaK(locs, 2),
    "Psi^1": lambda locs: PsiK(locs, 1),
    "Psi^2": lambda locs: PsiK(locs, 2),
}


#: Normalized aliases -> canonical ZOO keys.  Parameterized families map
#: to a family marker resolved with kwargs by :func:`resolve_detector`.
_FAMILIES: Dict[str, Callable[..., AFD]] = {
    "omega-k": lambda locations, k: OmegaK(locations, k),
    "psi-k": lambda locations, k: PsiK(locations, k),
}

_ALIASES: Dict[str, str] = {
    "omega": "Omega",
    "leader": "Omega",
    "p": "P",
    "perfect": "P",
    "evp": "EvP",
    "eventually-perfect": "EvP",
    "diamond-p": "EvP",
    "sigma": "Sigma",
    "quorum": "Sigma",
    "anti-omega": "antiOmega",
    "antiomega": "antiOmega",
    "s": "S",
    "strong": "S",
    "evs": "EvS",
    "eventually-strong": "EvS",
    "diamond-s": "EvS",
    "q": "Q",
    "quasi": "Q",
    "w": "W",
    "weak": "W",
    "evq": "EvQ",
    "eventually-quasi": "EvQ",
    "evw": "EvW",
    "eventually-weak": "EvW",
}


def _normalize(name: str) -> str:
    return name.strip().lower().replace("_", "-").replace(" ", "-")


def detector_names() -> List[str]:
    """Every accepted detector name: ZOO keys, aliases and families."""
    return sorted(set(ZOO) | set(_ALIASES) | set(_FAMILIES))


def resolve_detector(detector, locations: Sequence[int], **kwargs) -> AFD:
    """Instantiate a detector from whatever names one.

    Accepts an :class:`~repro.core.afd.AFD` instance (returned as-is; an
    error if kwargs are also given), a class/factory callable, or a string
    name — a ZOO key (``"Omega"``), a case-insensitive alias
    (``"omega"``, ``"eventually-strong"``) or a parameterized family
    (``"omega-k"``/``"psi-k"`` with a ``k=`` kwarg).  Raises
    :class:`ValueError` listing the valid names on an unknown string.
    """
    if isinstance(detector, AFD):
        if kwargs:
            raise ValueError(
                "detector_kwargs have no effect on an already-instantiated "
                f"AFD ({type(detector).__name__})"
            )
        return detector
    if isinstance(detector, str):
        key = _normalize(detector)
        if key in _FAMILIES:
            try:
                return _FAMILIES[key](tuple(locations), **kwargs)
            except TypeError as exc:
                raise ValueError(
                    f"detector {detector!r} needs its family parameter, "
                    'e.g. detector_kwargs={"k": 2}: ' + str(exc)
                ) from None
        factory = None
        if detector in ZOO:
            factory = ZOO[detector]
        elif key in _ALIASES:
            factory = ZOO[_ALIASES[key]]
        else:
            for zoo_name in ZOO:  # "omega^2" == "Omega^2"
                if _normalize(zoo_name) == key:
                    factory = ZOO[zoo_name]
                    break
        if factory is None:
            raise ValueError(
                f"unknown detector name {detector!r}; valid names: "
                + ", ".join(detector_names())
            )
        if kwargs:
            raise ValueError(
                f"detector {detector!r} takes no detector_kwargs "
                f"(got {sorted(kwargs)}); parameterized families are "
                + ", ".join(sorted(_FAMILIES))
            )
        return factory(tuple(locations))
    if callable(detector):
        return detector(tuple(locations), **kwargs)
    raise TypeError(
        "detector must be an AFD instance, a factory callable, or a "
        f"string name; got {type(detector).__name__}"
    )


#: Representative ``k`` values at which the parameterized families are
#: instantiated by :func:`iter_registered_automata`.  The ZOO already
#: registers k=1,2 under their ``Omega^k``/``Psi^k`` spellings; k=3 adds
#: one instance per family beyond the hand-registered ones.
_FAMILY_LINT_KS: Tuple[int, ...] = (1, 2, 3)


def iter_registered_automata(
    locations: Sequence[int] = (0, 1, 2),
) -> Iterator[Tuple[str, AFD, "Automaton"]]:
    """Yield ``(name, afd, generator_automaton)`` for every registered
    detector.

    Covers each ZOO entry plus the parameterized families
    (``omega-k``/``psi-k``) at the representative ``k`` values in
    :data:`_FAMILY_LINT_KS`, so tools that must see *every* named
    detector family — the contract linter first among them — need no
    hand-maintained list.  Names are ``"Omega"``-style ZOO keys for ZOO
    entries and ``"omega-k(k=3)"``-style labels for family instances.
    """
    locs = tuple(locations)
    for name in sorted(ZOO):
        afd = ZOO[name](locs)
        yield name, afd, afd.automaton()
    for family in sorted(_FAMILIES):
        for k in _FAMILY_LINT_KS:
            afd = _FAMILIES[family](locs, k=k)
            yield f"{family}(k={k})", afd, afd.automaton()


def instantiate_for_lint(
    name: str, locations: Sequence[int] = (0, 1, 2), **kwargs
) -> Tuple[AFD, "Automaton"]:
    """Resolve ``name`` and return ``(afd, generator_automaton)``.

    A thin convenience over :func:`resolve_detector` for lint-like tools
    that always want the executable generator automaton alongside the
    AFD; parameterized families default to ``k=1`` when no ``k=`` is
    given.
    """
    key = _normalize(name) if isinstance(name, str) else name
    if isinstance(key, str) and key in _FAMILIES and "k" not in kwargs:
        kwargs = dict(kwargs, k=1)
    afd = resolve_detector(name, locations, **kwargs)
    return afd, afd.automaton()


def instantiate_compiled_for_lint(
    name: str, locations: Sequence[int] = (0, 1, 2), **kwargs
) -> Tuple[AFD, "Automaton"]:
    """Like :func:`instantiate_for_lint`, but the automaton half is the
    detector's compiled core (:mod:`repro.compiled.tables`).

    The compiled core implements the full ``Automaton`` interface over
    its interned tables, so the contract linter can run the same
    REPROC02/REPROC04 probes against the compiled apply thunks that it
    runs against the interpreted ``apply`` — any divergence between the
    two surfaces as a contract finding on the compiled twin.
    """
    from repro.compiled.tables import compile_automaton

    afd, automaton = instantiate_for_lint(name, locations, **kwargs)
    return afd, compile_automaton(automaton)


def make_detector(name: str, locations: Sequence[int]) -> AFD:
    """Instantiate a zoo detector by (exact) name.

    Kept for the hierarchy machinery; :func:`resolve_detector` is the
    user-facing resolver and also accepts aliases and instances.
    """
    if name not in ZOO:
        raise KeyError(f"unknown detector {name!r}; known: {sorted(ZOO)}")
    return ZOO[name](locations)


# ---------------------------------------------------------------------------
# Per-event transformations witnessing the classical reductions
# ---------------------------------------------------------------------------


def _relabel(target_name: str) -> Callable[[Action], Action]:
    def transform(action: Action) -> Action:
        return Action(target_name, action.location, action.payload)

    return transform


def _suspects_to_leader(locations: Sequence[int]):
    locations = tuple(locations)

    def transform(action: Action) -> Action:
        suspects = set(action.payload[0])
        leader = min(i for i in locations if i not in suspects)
        return Action(OMEGA_OUTPUT, action.location, (leader,))

    return transform


def _suspects_to_quorum(locations: Sequence[int]):
    locations = tuple(locations)

    def transform(action: Action) -> Action:
        suspects = set(action.payload[0])
        quorum = sorted_tuple(i for i in locations if i not in suspects)
        return Action(SIGMA_OUTPUT, action.location, (quorum,))

    return transform


def _suspects_to_psi(locations: Sequence[int], k: int):
    locations = tuple(locations)

    def transform(action: Action) -> Action:
        suspects = frozenset(action.payload[0])
        quorum = sorted_tuple(i for i in locations if i not in suspects)
        leaders = _padded_leader_set(locations, suspects, k)
        return Action(PSI_K_OUTPUT, action.location, (quorum, leaders))

    return transform


def _leader_to_anti(locations: Sequence[int]):
    locations = tuple(locations)
    if len(locations) < 2:
        raise ValueError("Omega >= antiOmega needs at least 2 locations")

    def transform(action: Action) -> Action:
        leader = action.payload[0]
        avoidee = max(i for i in locations if i != leader)
        return Action(ANTI_OMEGA_OUTPUT, action.location, (avoidee,))

    return transform


def _leader_to_leader_set(locations: Sequence[int], k: int):
    locations = tuple(locations)

    def transform(action: Action) -> Action:
        leader = action.payload[0]
        others = [i for i in locations if i != leader]
        leaders = sorted_tuple([leader] + others[: k - 1])
        return Action(OMEGA_K_OUTPUT, action.location, (leaders,))

    return transform


# ---------------------------------------------------------------------------
# The reduction catalogue
# ---------------------------------------------------------------------------


def known_reductions() -> List[Reduction]:
    """All registered ⪰ edges, each with its witness algorithm factory."""
    from repro.algorithms.completeness_boost import (
        completeness_boost_algorithm,
    )
    from repro.algorithms.relay import relay_algorithm

    def edge(
        name: str,
        source_name: str,
        target_name: str,
        transform_builder,
    ) -> Reduction:
        def algorithm_factory(locations: Sequence[int]):
            source = make_detector(source_name, locations)
            target = make_detector(target_name, locations)
            transform = transform_builder(locations)
            return relay_algorithm(source, target, lambda _i: transform)

        return Reduction(
            name=name,
            source_factory=lambda locs, s=source_name: make_detector(s, locs),
            target_factory=lambda locs, t=target_name: make_detector(t, locs),
            algorithm_factory=algorithm_factory,
        )

    def boost_edge(name: str, source_name: str, target_name: str) -> Reduction:
        """A Chandra–Toueg completeness boost: message-passing witness."""

        def algorithm_factory(locations: Sequence[int]):
            source = make_detector(source_name, locations)
            target = make_detector(target_name, locations)
            return completeness_boost_algorithm(source, target)

        return Reduction(
            name=name,
            source_factory=lambda locs, s=source_name: make_detector(s, locs),
            target_factory=lambda locs, t=target_name: make_detector(t, locs),
            algorithm_factory=algorithm_factory,
            needs_channels=True,
        )

    return [
        edge("P>=EvP", "P", "EvP", lambda locs: _relabel(EVENTUALLY_PERFECT_OUTPUT)),
        edge("P>=S", "P", "S", lambda locs: _relabel(STRONG_OUTPUT)),
        edge("P>=EvS", "P", "EvS", lambda locs: _relabel(EVENTUALLY_STRONG_OUTPUT)),
        edge("S>=EvS", "S", "EvS", lambda locs: _relabel(EVENTUALLY_STRONG_OUTPUT)),
        edge("EvP>=EvS", "EvP", "EvS", lambda locs: _relabel(EVENTUALLY_STRONG_OUTPUT)),
        edge("P>=Q", "P", "Q", lambda locs: _relabel(QUASI_OUTPUT)),
        edge("S>=W", "S", "W", lambda locs: _relabel(WEAK_OUTPUT)),
        edge("EvP>=EvQ", "EvP", "EvQ", lambda locs: _relabel(EVENTUALLY_QUASI_OUTPUT)),
        edge("EvS>=EvW", "EvS", "EvW", lambda locs: _relabel(EVENTUALLY_WEAK_OUTPUT)),
        edge("Q>=EvQ", "Q", "EvQ", lambda locs: _relabel(EVENTUALLY_QUASI_OUTPUT)),
        edge("W>=EvW", "W", "EvW", lambda locs: _relabel(EVENTUALLY_WEAK_OUTPUT)),
        edge("P>=Omega", "P", "Omega", _suspects_to_leader),
        edge("EvP>=Omega", "EvP", "Omega", _suspects_to_leader),
        edge("P>=Sigma", "P", "Sigma", _suspects_to_quorum),
        edge("P>=Psi^2", "P", "Psi^2", lambda locs: _suspects_to_psi(locs, 2)),
        edge("Omega>=antiOmega", "Omega", "antiOmega", _leader_to_anti),
        edge("Omega>=Omega^1", "Omega", "Omega^1", lambda locs: _leader_to_leader_set(locs, 1)),
        edge("Omega>=Omega^2", "Omega", "Omega^2", lambda locs: _leader_to_leader_set(locs, 2)),
        # Chandra–Toueg [5]: weak completeness boosts to strong
        # completeness, preserving the accuracy property.
        boost_edge("Q>=P", "Q", "P"),
        boost_edge("W>=S", "W", "S"),
        boost_edge("EvQ>=EvP", "EvQ", "EvP"),
        boost_edge("EvW>=EvS", "EvW", "EvS"),
    ]


def reductions_from(source_name: str) -> List[Reduction]:
    """The registered edges whose source is ``source_name``."""
    prefix = f"{source_name}>="
    return [r for r in known_reductions() if r.name.startswith(prefix)]
