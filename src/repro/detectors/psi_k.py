"""The Psi^k failure detector as an AFD.

Psi^k (Mostefaoui, Rajsbaum, Raynal, Travers [22]) is a set-agreement-
oriented detector combining a quorum component with an Omega^k component.
Each output carries a pair ``(Q, L)``:

1. *(quorum intersection, safety)* every two Q components output anywhere
   intersect;
2. *(quorum completeness, eventual)* eventually Q components at live
   locations contain only live locations;
3. *(k-leadership, eventual)* if live(t) is nonempty, there is a k-sized
   set L* intersecting live(t) such that eventually every output at a live
   location carries L = L*.

The generator pairs the Sigma generator's quorum (``Pi \\ crashset``) with
the Omega^k generator's leader set.
"""

from __future__ import annotations

from typing import FrozenSet, Sequence

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton
from repro.core.afd import AFD, CheckResult, eventually_forever
from repro.detectors.base import CrashsetDetectorAutomaton, sorted_tuple
from repro.detectors.omega_k import _padded_leader_set
from repro.system.fault_pattern import is_crash

PSI_K_OUTPUT = "fd-psi-k"


def psi_k_output(location: int, quorum, leaders) -> Action:
    """The action ``FD-Psi^k(Q, L)_location``."""
    return Action(
        PSI_K_OUTPUT, location, (sorted_tuple(quorum), sorted_tuple(leaders))
    )


class PsiKAutomaton(CrashsetDetectorAutomaton):
    """Pairs the Sigma quorum with the Omega^k leader set."""

    def __init__(self, locations: Sequence[int], k: int):
        locations = tuple(locations)
        if not 1 <= k <= len(locations):
            raise ValueError(f"k must be in [1, {len(locations)}], got {k}")
        self.k = k

        def value(location: int, crashset: FrozenSet[int]):
            quorum = sorted_tuple(
                i for i in locations if i not in crashset
            )
            leaders = _padded_leader_set(locations, crashset, k)
            return (quorum, leaders)

        super().__init__(locations, PSI_K_OUTPUT, value, name=f"FD-Psi^{k}")


class PsiK(AFD):
    """The Psi^k AFD specification."""

    def __init__(self, locations: Sequence[int], k: int):
        locations = tuple(locations)
        if not 1 <= k <= len(locations):
            raise ValueError(f"k must be in [1, {len(locations)}], got {k}")
        super().__init__(locations, f"Psi^{k}", PSI_K_OUTPUT)
        self.k = k

    def well_formed_output(self, action: Action) -> bool:
        if len(action.payload) != 2:
            return False
        quorum, leaders = action.payload
        for part in (quorum, leaders):
            if not isinstance(part, tuple):
                return False
            if list(part) != sorted(set(part)):
                return False
            if not all(x in self.locations for x in part):
                return False
        return len(quorum) > 0 and len(leaders) == self.k

    def extra_safety(self, t: Sequence[Action]) -> CheckResult:
        quorums = [
            (k, frozenset(a.payload[0]))
            for k, a in enumerate(t)
            if not is_crash(a)
        ]
        for x in range(len(quorums)):
            for y in range(x + 1, len(quorums)):
                kx, qx = quorums[x]
                ky, qy = quorums[y]
                if not (qx & qy):
                    return CheckResult.failure(
                        f"Psi^k quorums at indices {kx} and {ky} do not "
                        f"intersect: {sorted(qx)} vs {sorted(qy)}"
                    )
        return CheckResult.success()

    def check_eventual(
        self, t: Sequence[Action], live: FrozenSet[int]
    ) -> CheckResult:
        quorum_completeness = eventually_forever(
            t,
            live,
            lambda a: (
                a.location not in live or set(a.payload[0]) <= live
            ),
            description="Psi^k quorum completeness",
        )
        if not live:
            return quorum_completeness
        candidates = {a.payload[1] for a in t if not is_crash(a)}
        leadership = None
        failures = []
        for candidate in sorted(candidates):
            if not set(candidate) & live:
                continue
            verdict = eventually_forever(
                t,
                live,
                lambda a, L=candidate: (
                    a.location not in live or a.payload[1] == L
                ),
                description=f"Psi^k leadership stabilization on {candidate}",
            )
            if verdict:
                leadership = verdict
                break
            failures.extend(verdict.reasons)
        if leadership is None:
            leadership = CheckResult.failure(
                "no k-leader-set with a live member stabilizes", *failures
            )
        return quorum_completeness.merge(leadership)

    def automaton(self) -> Automaton:
        return PsiKAutomaton(self.locations, self.k)
