"""The anti-Omega failure detector as an AFD.

anti-Omega (Zielinski [31]) is the weakest failure detector for (n-1)-set
agreement.  Each output is a single location ID; the specification is:

* there exists a live location l such that, eventually and permanently,
  no output event carries l.

(anti-Omega never has to stabilize on one value — it just has to
eventually stop naming some live location.)

The generator needs n >= 2: while at least two locations remain uncrashed
it outputs the *largest* uncrashed ID, which eventually differs from
``min(live)``; once only one location remains uncrashed it outputs an
arbitrary other (crashed) ID, again avoiding ``min(live)`` if the survivor
is min(live)... concretely it always outputs an ID different from
``min(Pi \\ crashset)``, whose limit is ``min(live)``.
"""

from __future__ import annotations

from typing import FrozenSet, Sequence

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton
from repro.core.afd import AFD, CheckResult, eventually_forever
from repro.detectors.base import CrashsetDetectorAutomaton

ANTI_OMEGA_OUTPUT = "fd-anti-omega"


def anti_omega_output(location: int, target: int) -> Action:
    """The action ``FD-antiOmega(target)_location``."""
    return Action(ANTI_OMEGA_OUTPUT, location, (target,))


class AntiOmegaAutomaton(CrashsetDetectorAutomaton):
    """Outputs an ID different from ``min(Pi \\ crashset)``.

    Because ``min(Pi \\ crashset)`` converges to ``min(live)``, the output
    eventually never names ``min(live)`` — a live location, as required.
    Needs ``|Pi| >= 2`` (with one location, no other ID exists to output).
    """

    def __init__(self, locations: Sequence[int]):
        locations = tuple(locations)
        if len(locations) < 2:
            raise ValueError("anti-Omega generator needs at least 2 locations")

        def value(location: int, crashset: FrozenSet[int]):
            remaining = [i for i in locations if i not in crashset]
            protected = min(remaining)
            candidates = [i for i in locations if i != protected]
            return (max(candidates),)

        super().__init__(
            locations, ANTI_OMEGA_OUTPUT, value, name="FD-antiOmega"
        )


class AntiOmega(AFD):
    """The anti-Omega AFD specification."""

    def __init__(self, locations: Sequence[int]):
        super().__init__(locations, "antiOmega", ANTI_OMEGA_OUTPUT)

    def well_formed_output(self, action: Action) -> bool:
        return (
            len(action.payload) == 1 and action.payload[0] in self.locations
        )

    def check_eventual(
        self, t: Sequence[Action], live: FrozenSet[int]
    ) -> CheckResult:
        if not live:
            return CheckResult.success()
        failures = []
        for candidate in sorted(live):
            verdict = eventually_forever(
                t,
                live,
                lambda a, l=candidate: a.payload[0] != l,
                description=f"anti-Omega avoidance of live location {candidate}",
            )
            if verdict:
                return verdict
            failures.extend(verdict.reasons)
        return CheckResult.failure(
            "every live location is output arbitrarily late "
            "(no live ID is eventually avoided)",
            *failures,
        )

    def automaton(self) -> Automaton:
        return AntiOmegaAutomaton(self.locations)
