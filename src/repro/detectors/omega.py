"""The leader-election oracle Omega as an AFD (Section 3.3, Algorithm 1).

Specification: T_Omega is the set of all valid sequences t over
``I-hat ∪ O_Omega`` such that if ``live(t)`` is nonempty, there exist a
live location l and a suffix of t whose outputs are all ``FD-Omega(l)_i``
with i live.  That is: eventually and permanently, a unique live leader is
output at all live locations.

Omega is a weakest failure detector for consensus [4]; the consensus
algorithm of :mod:`repro.algorithms.consensus_omega` uses it.
"""

from __future__ import annotations

from typing import FrozenSet, Sequence

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton
from repro.core.afd import AFD, CheckResult, eventually_forever
from repro.detectors.base import CrashsetDetectorAutomaton

OMEGA_OUTPUT = "fd-omega"


def omega_output(location: int, leader: int) -> Action:
    """The action ``FD-Omega(leader)_location``."""
    return Action(OMEGA_OUTPUT, location, (leader,))


class OmegaAutomaton(CrashsetDetectorAutomaton):
    """Algorithm 1: outputs ``min(Pi \\ crashset)`` at every live location."""

    def __init__(self, locations: Sequence[int]):
        def value(location: int, crashset: FrozenSet[int]):
            remaining = [i for i in locations if i not in crashset]
            # While every location is crashed the enabled set is empty, so
            # this function is only consulted with a nonempty remainder.
            return (min(remaining),)

        super().__init__(locations, OMEGA_OUTPUT, value, name="FD-Omega")


class Omega(AFD):
    """The Omega AFD specification."""

    def __init__(self, locations: Sequence[int]):
        super().__init__(locations, "Omega", OMEGA_OUTPUT)

    def well_formed_output(self, action: Action) -> bool:
        return (
            len(action.payload) == 1 and action.payload[0] in self.locations
        )

    def check_eventual(
        self, t: Sequence[Action], live: FrozenSet[int]
    ) -> CheckResult:
        if not live:
            return CheckResult.success()
        failures = []
        for candidate in sorted(live):
            verdict = eventually_forever(
                t,
                live,
                lambda a, l=candidate: (
                    a.location in live and a.payload[0] == l
                ),
                description=f"Omega stabilization on leader {candidate}",
            )
            if verdict:
                return verdict
            failures.extend(verdict.reasons)
        return CheckResult.failure(
            "no live location is eventually the permanent leader at all "
            "live locations",
            *failures,
        )

    def automaton(self) -> Automaton:
        return OmegaAutomaton(self.locations)
