"""Constrained reorderings of failure-detector sequences (Section 3.2).

A permutation t' of t is a *constrained reordering* of t iff for every
pair of events e, e' such that e precedes e' in t and either

* ``loc(e) = loc(e')``, or
* ``e ∈ I-hat`` (e is a crash event),

e also precedes e' in t'.  Constrained reorderings model delaying output
events across locations; closure under them is the third defining AFD
property.

Implementation notes: events are occurrences, so duplicated actions must be
matched between t and t'.  Because identical actions share a location, the
same-location constraint forces equal actions to keep their relative order,
so matching the k-th occurrence in t to the k-th occurrence in t' is the
canonical (and only possible) matching.
"""

from __future__ import annotations

import itertools
import random
from collections import defaultdict, deque
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.ioa.actions import Action
from repro.system.fault_pattern import is_crash


def constrained_predecessors(t: Sequence[Action]) -> List[Set[int]]:
    """For each occurrence index q of t, the set of indices p < q that must
    precede it in any constrained reordering."""
    preds: List[Set[int]] = [set() for _ in t]
    for q in range(len(t)):
        for p in range(q):
            if t[p].location == t[q].location or is_crash(t[p]):
                preds[q].add(p)
    return preds


def _occurrence_positions(t: Sequence[Action]) -> Dict[Action, List[int]]:
    positions: Dict[Action, List[int]] = defaultdict(list)
    for k, a in enumerate(t):
        positions[a].append(k)
    return positions


def is_constrained_reordering_of(
    candidate: Sequence[Action], t: Sequence[Action]
) -> bool:
    """Whether ``candidate`` is a constrained reordering of ``t`` (exact)."""
    if len(candidate) != len(t):
        return False
    pos_t = _occurrence_positions(t)
    pos_c = _occurrence_positions(candidate)
    if set(pos_t) != set(pos_c):
        return False
    if any(len(pos_t[a]) != len(pos_c[a]) for a in pos_t):
        return False
    # where[p] = position in candidate of the occurrence that is t[p].
    where: List[int] = [0] * len(t)
    counters: Dict[Action, int] = defaultdict(int)
    for p, a in enumerate(t):
        where[p] = pos_c[a][counters[a]]
        counters[a] += 1
    for q, preds in enumerate(constrained_predecessors(t)):
        for p in preds:
            if where[p] > where[q]:
                return False
    return True


def random_constrained_reordering(
    t: Sequence[Action], seed: int = 0
) -> List[Action]:
    """A random constrained reordering of ``t``.

    Randomized Kahn's algorithm over the constraint DAG: repeatedly emit a
    uniformly random occurrence whose constrained predecessors have all
    been emitted.
    """
    rng = random.Random(seed)
    preds = constrained_predecessors(t)
    remaining_preds = [set(p) for p in preds]
    successors: List[List[int]] = [[] for _ in t]
    for q, ps in enumerate(preds):
        for p in ps:
            successors[p].append(q)
    ready = sorted(q for q in range(len(t)) if not remaining_preds[q])
    result: List[Action] = []
    while ready:
        k = rng.randrange(len(ready))
        chosen = ready.pop(k)
        result.append(t[chosen])
        for q in successors[chosen]:
            remaining_preds[q].discard(chosen)
            if not remaining_preds[q]:
                ready.append(q)
    assert len(result) == len(t)
    return result


def enumerate_constrained_reorderings(
    t: Sequence[Action], max_results: Optional[int] = None
) -> Iterator[List[Action]]:
    """All constrained reorderings of ``t`` (all topological orders of the
    constraint DAG); exponential, use only on short sequences."""
    preds = constrained_predecessors(t)
    n = len(t)
    count = 0

    def backtrack(
        emitted: List[int], used: Set[int]
    ) -> Iterator[List[Action]]:
        nonlocal count
        if max_results is not None and count >= max_results:
            return
        if len(emitted) == n:
            count += 1
            yield [t[k] for k in emitted]
            return
        for q in range(n):
            if q in used:
                continue
            if preds[q] <= used:
                emitted.append(q)
                used.add(q)
                yield from backtrack(emitted, used)
                used.discard(q)
                emitted.pop()

    yield from backtrack([], set())


def delay_location(
    t: Sequence[Action], location: int, by: int
) -> List[Action]:
    """A specific useful constrained reordering: push each output event at
    ``location`` later by up to ``by`` positions, respecting constraints.

    Returns a constrained reordering of ``t`` (possibly equal to ``t`` when
    nothing can move).
    """
    result = list(t)
    n = len(result)
    moved = True
    budget = by
    while moved and budget > 0:
        moved = False
        for k in range(n - 2, -1, -1):
            a, b = result[k], result[k + 1]
            movable = (
                a.location == location
                and not is_crash(a)
                and a.location != b.location
                and not is_crash(a)
            )
            if movable:
                result[k], result[k + 1] = b, a
                moved = True
        budget -= 1
    return result
