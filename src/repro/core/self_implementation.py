"""Algorithm 3: self-implementability of AFDs (Section 6).

``A^self`` is a distributed algorithm that uses an arbitrary AFD D to
solve a renaming D' of D, establishing Theorem 13 and Corollary 14 (every
AFD is self-implementable, ``D ⪰ D``).

Each location i keeps a FIFO queue ``fdq`` of the D-outputs received at i.
When ``d ∈ O_{D,i}`` occurs, it is enqueued; the output ``d' ∈ O_{D',i}``
is enabled exactly when ``r_IO^{-1}(d')`` is at the head of the queue, and
performing it dequeues.  A crash disables the outputs permanently (the
:class:`~repro.system.process.ProcessAutomaton` wrapper provides that).

The proof of correctness (Lemmas 2–12) hinges on the queue behavior:
outputs at each location form a prefix of the inputs there (closure under
sampling absorbs the unemitted suffix at faulty locations), and the
interleaving of emissions across locations is a constrained reordering of
the input interleaving.  The test suite re-traces those lemmas on concrete
executions.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import State
from repro.ioa.signature import ActionSet, PredicateActionSet
from repro.core.afd import AFD
from repro.core.renaming import Renaming
from repro.system.process import DistributedAlgorithm, ProcessAutomaton


class SelfImplementationProcess(ProcessAutomaton):
    """The automaton ``A^self_i`` of Algorithm 3.

    Core state: the tuple ``fdq`` of queued D-output actions at this
    location (head first).
    """

    uses_channels = False  # pure detector transformation: no messages

    def __init__(self, location: int, afd: AFD, renaming: Renaming):
        self.afd = afd
        self.renaming = renaming
        super().__init__(location, name=f"Aself[{location}]")

    # -- Signature ------------------------------------------------------------

    def core_inputs(self) -> ActionSet:
        return PredicateActionSet(
            lambda a: self.afd.is_output(a) and a.location == self.location,
            f"O_D at {self.location}",
        )

    def core_outputs(self) -> ActionSet:
        return PredicateActionSet(
            lambda a: (
                self.renaming.covers_renamed(a)
                and not a.name == "crash"
                and a.location == self.location
                and self.afd.is_output(self.renaming.invert(a))
            ),
            f"O_D' at {self.location}",
        )

    # -- Transitions ----------------------------------------------------------

    def core_initial(self) -> State:
        return ()  # fdq, initially empty

    def core_apply(self, core: State, action: Action) -> State:
        if self.afd.is_output(action) and action.location == self.location:
            return core + (action,)  # input d: add d to fdq
        if core and action == self.renaming.apply(core[0]):
            return core[1:]  # output d': delete head of fdq
        return core

    def core_enabled(self, core: State) -> Iterable[Action]:
        if core:
            yield self.renaming.apply(core[0])


def self_implementation_algorithm(
    afd: AFD, suffix: str = "'"
) -> Tuple[DistributedAlgorithm, Renaming]:
    """Build ``A^self`` for ``afd`` and the renaming r_IO it realizes.

    Returns the distributed algorithm together with the renaming, so
    callers can check the emitted trace against the renamed AFD
    ``afd.renamed(suffix)``.
    """
    renaming = afd.renaming(suffix)
    processes: Dict[int, ProcessAutomaton] = {
        i: SelfImplementationProcess(i, afd, renaming)
        for i in afd.locations
    }
    return DistributedAlgorithm(processes), renaming
