"""Renamings of crash problems (Section 5.3).

A renaming replaces every non-crash action of a problem with a fresh,
same-located action, via a bijection r_IO that fixes crash actions.  Our
renamings act on action *names*: ``r_IO(Action(n, i, p)) = Action(n', i, p)``
where ``n'`` is the renamed name.  This satisfies every condition of the
definition: locations are preserved (2a), crash actions are fixed (2b),
inputs map to inputs and outputs to outputs (2c, 2d), and the trace set of
the renamed problem is the image of the original's (2e) by homomorphic
extension (:meth:`Renaming.apply_sequence`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.ioa.actions import Action
from repro.system.fault_pattern import CRASH, is_crash


class Renaming:
    """A name-level bijection implementing r_IO.

    Parameters
    ----------
    name_map:
        Mapping of original action names to fresh names.  Crash actions are
        always fixed and must not appear in the map.

    Examples
    --------
    >>> r = Renaming({"fd-omega": "fd-omega-prime"})
    >>> r.apply(Action("fd-omega", 1, (0,)))
    Action(name='fd-omega-prime', location=1, payload=(0,))
    >>> r.apply(Action("crash", 1))
    Action(name='crash', location=1, payload=())
    """

    def __init__(self, name_map: Dict[str, str]):
        if CRASH in name_map:
            raise ValueError("renamings must fix crash actions")
        values = list(name_map.values())
        if len(set(values)) != len(values):
            raise ValueError("renaming is not injective on names")
        overlap = set(name_map) & set(values)
        if overlap:
            raise ValueError(
                f"renamed names must be fresh, but {sorted(overlap)} appear "
                "on both sides"
            )
        self._forward = dict(name_map)
        self._backward = {v: k for k, v in name_map.items()}

    @staticmethod
    def with_suffix(names: Iterable[str], suffix: str = "'") -> "Renaming":
        """The renaming appending ``suffix`` to each of ``names``."""
        return Renaming({n: n + suffix for n in names})

    # -- Applying -----------------------------------------------------------

    def apply(self, action: Action) -> Action:
        """r_IO(action)."""
        if is_crash(action):
            return action
        if action.name not in self._forward:
            raise KeyError(f"renaming does not cover action name {action.name!r}")
        return action.with_name(self._forward[action.name])

    def invert(self, action: Action) -> Action:
        """r_IO^{-1}(action)."""
        if is_crash(action):
            return action
        if action.name not in self._backward:
            raise KeyError(
                f"inverse renaming does not cover action name {action.name!r}"
            )
        return action.with_name(self._backward[action.name])

    def covers(self, action: Action) -> bool:
        """Whether ``action`` is in the domain of this renaming."""
        return is_crash(action) or action.name in self._forward

    def covers_renamed(self, action: Action) -> bool:
        """Whether ``action`` is in the range of this renaming."""
        return is_crash(action) or action.name in self._backward

    # -- Homomorphic extension to sequences (condition 2e) -------------------

    def apply_sequence(self, t: Sequence[Action]) -> List[Action]:
        """r_IO(t): elementwise application; preserves length."""
        return [self.apply(a) for a in t]

    def invert_sequence(self, t: Sequence[Action]) -> List[Action]:
        """r_IO^{-1}(t)."""
        return [self.invert(a) for a in t]

    def __repr__(self) -> str:
        return f"Renaming({self._forward!r})"
