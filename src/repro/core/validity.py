"""Valid sequences over I-hat and failure-detector outputs (Section 3.2).

A sequence t over ``I-hat ∪ O_D`` is *valid* iff

1. for every location i, no event of ``O_{D,i}`` occurs after a ``crash_i``
   event in t; and
2. if no ``crash_i`` occurs in t, then t contains infinitely many events of
   ``O_{D,i}``.

Condition (1) is a safety property, checked exactly on finite sequences.
Condition (2) is a liveness property over infinite sequences; for the
finite traces produced by simulation we check the standard finite
approximation: every live location has at least ``min_live_outputs``
output events (callers pick the threshold; experiments run long enough
that the threshold is comfortably met by any fair run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.executions import ActionSequence
from repro.system.fault_pattern import is_crash


def faulty_locations(t: Sequence[Action]) -> FrozenSet[int]:
    """``faulty(t)``: locations at which a crash event occurs in t."""
    return frozenset(a.location for a in t if is_crash(a))


def live_locations(
    t: Sequence[Action], locations: Sequence[int]
) -> FrozenSet[int]:
    """``live(t)``: locations with no crash event in t."""
    return frozenset(locations) - faulty_locations(t)


def first_crash_index(t: Sequence[Action], location: int) -> Optional[int]:
    """0-based index of the first ``crash_location`` event in t, or None."""
    for k, a in enumerate(t):
        if is_crash(a) and a.location == location:
            return k
    return None


def outputs_at(t: Sequence[Action], location: int) -> List[Action]:
    """The subsequence of non-crash (output) events at ``location``."""
    return [a for a in t if not is_crash(a) and a.location == location]


@dataclass
class ValidityReport:
    """The result of a validity check, with human-readable reasons."""

    ok: bool
    reasons: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok

    @staticmethod
    def success() -> "ValidityReport":
        return ValidityReport(True)

    @staticmethod
    def failure(*reasons: str) -> "ValidityReport":
        return ValidityReport(False, list(reasons))

    def merge(self, other: "ValidityReport") -> "ValidityReport":
        return ValidityReport(self.ok and other.ok, self.reasons + other.reasons)


def check_no_outputs_after_crash(t: Sequence[Action]) -> ValidityReport:
    """Validity condition (1), exact on finite sequences."""
    crashed: set = set()
    for k, a in enumerate(t):
        if is_crash(a):
            crashed.add(a.location)
        elif a.location in crashed:
            return ValidityReport.failure(
                f"event {a} at index {k} occurs after crash_{a.location}"
            )
    return ValidityReport.success()


def check_live_output_liveness(
    t: Sequence[Action],
    locations: Sequence[int],
    min_live_outputs: int,
) -> ValidityReport:
    """Validity condition (2), finite approximation.

    Every location without a crash event must have at least
    ``min_live_outputs`` output events in t.
    """
    report = ValidityReport.success()
    for i in live_locations(t, locations):
        count = len(outputs_at(t, i))
        if count < min_live_outputs:
            report = report.merge(
                ValidityReport.failure(
                    f"live location {i} has only {count} output events "
                    f"(needed >= {min_live_outputs})"
                )
            )
    return report


def is_valid_finite(
    t: Sequence[Action],
    locations: Sequence[int],
    min_live_outputs: int = 1,
) -> ValidityReport:
    """Both validity conditions on a finite sequence.

    Condition (1) exactly; condition (2) as the finite approximation
    described in the module docstring.
    """
    return check_no_outputs_after_crash(t).merge(
        check_live_output_liveness(t, locations, min_live_outputs)
    )


def stabilized_suffix(
    t: Sequence[Action], fraction: float = 0.5
) -> List[Action]:
    """The trailing part of t used to evaluate 'eventually forever'
    properties (the t_suff of the paper's eventual specifications).

    By convention the final ``fraction`` of the sequence: long fair runs of
    the generator automata stabilize well before the midpoint, so eventual
    properties that hold in the limit hold on this suffix.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    start = int(len(t) * (1 - fraction))
    return list(t[start:])


def split_crash_and_outputs(
    t: Sequence[Action],
) -> Tuple[List[Action], List[Action]]:
    """Partition a sequence into (crash events, output events)."""
    crashes = [a for a in t if is_crash(a)]
    outputs = [a for a in t if not is_crash(a)]
    return crashes, outputs
