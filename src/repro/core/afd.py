"""The asynchronous failure detector abstraction (Section 3.2).

An AFD is a crash problem ``D = (I-hat, O_D, T_D)`` satisfying *crash
exclusivity* (its only inputs are the crash events) plus three properties:

1. **Validity** — every t in T_D is valid (no outputs after a crash at the
   same location; infinitely many outputs at live locations);
2. **Closure under sampling**;
3. **Closure under constrained reordering**.

T_D is an infinite set of infinite sequences, so an :class:`AFD` instance
carries two executable artifacts:

* a **checker** for membership: exact safety checking of finite prefixes
  (:meth:`AFD.check_safety`) and limit checking of completed finite runs
  (:meth:`AFD.check_limit`).  Eventual ("there exists a suffix such that
  ...") properties are evaluated by locating the last violating event and
  requiring that a nontrivial witness suffix follows it — every live
  location must produce at least one further output after the last
  violation (:func:`eventually_forever`).  This approximation is stable
  under samplings and constrained reorderings, unlike a fixed-position
  window;
* a **generator automaton** (:meth:`AFD.automaton`) whose fair traces lie
  in T_D — the paper's Algorithms 1 and 2 are instances.

:func:`check_afd_closure_properties` validates properties 1–3 on concrete
traces by generating samplings and constrained reorderings and re-checking
membership; the hypothesis-based test suite drives it across the zoo.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton
from repro.ioa.signature import ActionSet, PredicateActionSet
from repro.core.renaming import Renaming
from repro.core.reordering import random_constrained_reordering
from repro.core.sampling import random_sampling
from repro.core.validity import (
    check_no_outputs_after_crash,
    is_valid_finite,
    live_locations,
)
from repro.system.fault_pattern import is_crash


@dataclass
class CheckResult:
    """Outcome of a specification check, with reasons on failure."""

    ok: bool
    reasons: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok

    @staticmethod
    def success() -> "CheckResult":
        return CheckResult(True)

    @staticmethod
    def failure(*reasons: str) -> "CheckResult":
        return CheckResult(False, list(reasons))

    def merge(self, other) -> "CheckResult":
        return CheckResult(
            self.ok and other.ok, self.reasons + list(other.reasons)
        )


def eventually_forever(
    t: Sequence[Action],
    live: FrozenSet[int],
    event_ok: Callable[[Action], bool],
    min_tail_outputs: int = 3,
    description: str = "eventual property",
) -> CheckResult:
    """Finite approximation of "there exists a suffix of t in which every
    output event satisfies ``event_ok``".

    Finds the last output event violating ``event_ok``; the property holds
    iff after that event every live location still produces at least
    ``min_tail_outputs`` outputs (a nontrivial witness that the run had
    stabilized — the default of 3 keeps a single trailing conforming
    output from counting as 'stabilization').  Crash events never violate.
    """
    last_violation = -1
    for k, a in enumerate(t):
        if not is_crash(a) and not event_ok(a):
            last_violation = k
    tail = t[last_violation + 1 :]
    for i in live:
        count = sum(
            1 for a in tail if not is_crash(a) and a.location == i
        )
        if count < min_tail_outputs:
            return CheckResult.failure(
                f"{description}: live location {i} has only {count} outputs "
                f"after the last violating event (index {last_violation}); "
                f"needed >= {min_tail_outputs}"
            )
    return CheckResult.success()


class AFD(ABC):
    """Base class for asynchronous failure detectors.

    Subclasses define the output-action vocabulary, per-event
    well-formedness, any additional safety conditions, the eventual
    (liveness) conditions, and the canonical generator automaton.

    Parameters
    ----------
    locations:
        The location set Pi.
    name:
        Human-readable detector name (e.g. ``"Omega"``).
    output_name:
        The action name of this detector's outputs (e.g. ``"fd-omega"``).
    """

    def __init__(
        self, locations: Sequence[int], name: str, output_name: str
    ):
        self.locations: Tuple[int, ...] = tuple(locations)
        self.name = name
        self.output_name = output_name

    # ------------------------------------------------------------------
    # Action vocabulary
    # ------------------------------------------------------------------

    def is_output(self, action: Action) -> bool:
        """Whether ``action`` is in O_D."""
        return (
            action.name == self.output_name
            and action.location in self.locations
        )

    def is_event(self, action: Action) -> bool:
        """Whether ``action`` is in I-hat ∪ O_D."""
        return is_crash(action) or self.is_output(action)

    def output_actions(self) -> ActionSet:
        """O_D as an action set (for signatures and projections)."""
        return PredicateActionSet(self.is_output, f"O_{self.name}")

    def event_actions(self) -> ActionSet:
        """I-hat ∪ O_D as an action set."""
        return PredicateActionSet(self.is_event, f"events({self.name})")

    def project_events(self, t: Sequence[Action]) -> List[Action]:
        """``t | (I-hat ∪ O_D)``."""
        return [a for a in t if self.is_event(a)]

    # ------------------------------------------------------------------
    # Specification hooks
    # ------------------------------------------------------------------

    @abstractmethod
    def well_formed_output(self, action: Action) -> bool:
        """Whether an output event's payload is well formed for this AFD."""

    def extra_safety(self, t: Sequence[Action]) -> CheckResult:
        """Detector-specific safety conditions over a finite prefix.

        Default: none.  (Example: the perfect detector P never suspects a
        location before its crash event.)
        """
        return CheckResult.success()

    @abstractmethod
    def check_eventual(
        self, t: Sequence[Action], live: FrozenSet[int]
    ) -> CheckResult:
        """Detector-specific eventual conditions over the full completed
        run; implementations typically use :func:`eventually_forever`.

        ``live`` is the set of locations with no crash event in t.
        """

    @abstractmethod
    def automaton(self) -> Automaton:
        """A canonical generator automaton whose fair traces lie in T_D."""

    # ------------------------------------------------------------------
    # Membership checking
    # ------------------------------------------------------------------

    def check_events_well_formed(self, t: Sequence[Action]) -> CheckResult:
        for k, a in enumerate(t):
            if is_crash(a):
                continue
            if not self.is_output(a):
                return CheckResult.failure(
                    f"event {a} at index {k} is not an event of {self.name}"
                )
            if not self.well_formed_output(a):
                return CheckResult.failure(
                    f"output {a} at index {k} is malformed for {self.name}"
                )
        return CheckResult.success()

    def check_safety(self, t: Sequence[Action]) -> CheckResult:
        """Exact necessary conditions for t to be a prefix of some member
        of T_D: event vocabulary, validity condition (1), extra safety."""
        result = self.check_events_well_formed(t)
        if not result:
            return result
        validity = check_no_outputs_after_crash(t)
        result = result.merge(CheckResult(validity.ok, validity.reasons))
        if not result:
            return result
        return result.merge(self.extra_safety(t))

    def check_limit(
        self,
        t: Sequence[Action],
        min_live_outputs: int = 1,
    ) -> CheckResult:
        """Treat the finite t as a completed fair run and check membership:
        safety exactly, validity's liveness half and the detector's
        eventual conditions via their finite approximations (DESIGN.md,
        substitution table)."""
        result = self.check_safety(t)
        if not result:
            return result
        validity = is_valid_finite(t, self.locations, min_live_outputs)
        result = result.merge(CheckResult(validity.ok, validity.reasons))
        if not result:
            return result
        live = live_locations(t, self.locations)
        return result.merge(self.check_eventual(t, live))

    # ------------------------------------------------------------------
    # Renaming (Section 5.3)
    # ------------------------------------------------------------------

    def renaming(self, suffix: str = "'") -> Renaming:
        """The canonical renaming of this AFD's outputs."""
        return Renaming.with_suffix([self.output_name], suffix)

    def renamed(self, suffix: str = "'") -> "RenamedAFD":
        """The renamed AFD D' with ``T_D' = { r_IO(t) | t in T_D }``."""
        return RenamedAFD(self, suffix)

    def __repr__(self) -> str:
        return f"<AFD {self.name} over {self.locations}>"


class RenamedAFD(AFD):
    """A renaming D' of a base AFD (Section 5.3).

    Membership checks invert the renaming and delegate to the base;
    T_D' is the image of T_D under r_IO, so this is exact.
    """

    def __init__(self, base: AFD, suffix: str = "'"):
        super().__init__(
            base.locations, base.name + suffix, base.output_name + suffix
        )
        self.base = base
        self.suffix = suffix
        self._renaming = base.renaming(suffix)

    @property
    def renaming_map(self) -> Renaming:
        return self._renaming

    def well_formed_output(self, action: Action) -> bool:
        return self.base.well_formed_output(self._renaming.invert(action))

    def extra_safety(self, t: Sequence[Action]) -> CheckResult:
        return self.base.extra_safety(self._renaming.invert_sequence(t))

    def check_eventual(
        self, t: Sequence[Action], live: FrozenSet[int]
    ) -> CheckResult:
        return self.base.check_eventual(
            self._renaming.invert_sequence(t), live
        )

    def automaton(self) -> Automaton:
        from repro.detectors.base import RenamedDetectorAutomaton

        return RenamedDetectorAutomaton(self.base.automaton(), self._renaming)


def check_afd_closure_properties(
    afd: AFD,
    t: Sequence[Action],
    num_samplings: int = 5,
    num_reorderings: int = 5,
    seed: int = 0,
    min_live_outputs: int = 1,
) -> CheckResult:
    """Validate the three AFD properties on a concrete accepted trace.

    1. t itself passes the limit check (validity);
    2. random samplings of t pass the limit check (closure under sampling);
    3. random constrained reorderings pass it (closure under reordering).
    """
    result = afd.check_limit(t, min_live_outputs)
    if not result:
        return CheckResult.failure(
            f"base trace rejected by {afd.name}: {result.reasons}"
        )
    # seed + k predates derive_seed and is frozen: the E01/E03 BENCH
    # series replay these exact sampling/reordering draws.
    for k in range(num_samplings):
        sampled = random_sampling(t, seed=seed + k)  # repro-lint: disable=REPRO008
        sub = afd.check_limit(sampled, min_live_outputs)
        if not sub:
            return CheckResult.failure(
                f"sampling #{k} rejected: {sub.reasons}"
            )
    for k in range(num_reorderings):
        reordered = random_constrained_reordering(t, seed=seed + k)  # repro-lint: disable=REPRO008
        sub = afd.check_limit(reordered, min_live_outputs)
        if not sub:
            return CheckResult.failure(
                f"constrained reordering #{k} rejected: {sub.reasons}"
            )
    return CheckResult.success()
