"""Weakest and representative AFDs (Section 7.2).

Definitions made executable:

* D is a **weakest** AFD (within a candidate set) for problem P in
  environment E iff D ⪰_E P and every candidate D' with D' ⪰_E P
  satisfies D' ⪰ D.
* D is **representative** of P in E iff D ⪰_E P *and* P ⪰ D: the problem
  can be solved from the detector and the detector can be extracted from a
  black-box solution to the problem.

Lemma 20: representative ⇒ weakest.  Theorem 21 (the negative result —
bounded problems have no representative AFD) is exercised through the
constructions in :mod:`repro.problems.bounded`.

These relations quantify over all algorithms, so full verification is out
of reach of any finite tool; what the library offers is the *bookkeeping*:
given concrete witness algorithms and a battery of fault patterns, it
evaluates both directions and reports the verdict the definitions need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.afd import AFD


@dataclass
class DirectionEvidence:
    """Outcomes of running one reduction direction across fault patterns."""

    attempted: int = 0
    held: int = 0
    vacuous: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def all_held(self) -> bool:
        return self.attempted > 0 and self.held == self.attempted

    def record(self, holds: bool, vacuous: bool, note: str = "") -> None:
        self.attempted += 1
        if holds:
            self.held += 1
        elif note:
            self.failures.append(note)
        if vacuous:
            self.vacuous += 1


@dataclass
class RepresentativeVerdict:
    """Evidence that an AFD is (or is not) representative of a problem.

    ``solves`` collects runs of an algorithm solving the problem using the
    detector (D ⪰_E P); ``extracts`` collects runs of an algorithm solving
    the detector using a black-box solution to the problem (P ⪰ D).
    """

    afd_name: str
    problem_name: str
    solves: DirectionEvidence = field(default_factory=DirectionEvidence)
    extracts: DirectionEvidence = field(default_factory=DirectionEvidence)

    @property
    def representative_on_evidence(self) -> bool:
        """Both directions held on every attempted fault pattern."""
        return self.solves.all_held and self.extracts.all_held

    @property
    def weakest_candidate_on_evidence(self) -> bool:
        """Only the D ⪰_E P direction is required for weakest-ness; the
        universal quantification over other detectors cannot be sampled."""
        return self.solves.all_held


def is_weakest_candidate(
    afd: AFD,
    solved_by: Iterable[str],
    stronger_than: Dict[str, bool],
) -> bool:
    """Bookkeeping form of the weakest-AFD definition over a finite
    candidate set: ``solved_by`` lists candidate detectors known to solve
    the problem, ``stronger_than[name]`` records whether ``name ⪰ afd``
    was witnessed.  Returns whether every solver is stronger than ``afd``.
    """
    return all(stronger_than.get(name, False) for name in solved_by)
