"""Samplings of failure-detector sequences (Section 3.2).

A sequence t' is a *sampling* of t iff

1. t' is a subsequence of t;
2. for every live location i, ``t'|O_{D,i} = t|O_{D,i}`` (all outputs at
   live locations are retained);
3. for every faulty location i, t' contains the first ``crash_i`` event of
   t, and ``t'|O_{D,i}`` is a prefix of ``t|O_{D,i}``.

Samplings model a failure detector 'skipping' a suffix of outputs at a
faulty location; closure under sampling is the second defining property of
an AFD.  All functions below are exact on finite sequences.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.ioa.actions import Action
from repro.core.validity import (
    faulty_locations,
    first_crash_index,
    outputs_at,
)
from repro.system.fault_pattern import is_crash


def _is_subsequence(candidate: Sequence[Action], t: Sequence[Action]) -> bool:
    """Order-preserving subsequence test (greedy matching)."""
    it = iter(t)
    return all(any(mine == theirs for theirs in it) for mine in candidate)


def is_sampling_of(
    candidate: Sequence[Action],
    t: Sequence[Action],
) -> bool:
    """Whether ``candidate`` is a sampling of ``t`` (exact, finite).

    Liveness of locations is judged from ``t`` itself: a location is faulty
    iff a crash event for it occurs in ``t``.
    """
    if not _is_subsequence(candidate, t):
        return False
    faulty = faulty_locations(t)
    # Locations mentioned by outputs in either sequence.
    locations: Set[int] = {
        a.location for a in itertools.chain(t, candidate) if a.location is not None
    }
    for i in locations:
        mine = outputs_at(candidate, i)
        theirs = outputs_at(t, i)
        if i in faulty:
            # Must retain the first crash_i event.
            k = first_crash_index(t, i)
            assert k is not None
            if first_crash_index(candidate, i) is None:
                return False
            # Outputs must form a prefix.
            if mine != theirs[: len(mine)]:
                return False
        else:
            if mine != theirs:
                return False
    return True


def random_sampling(
    t: Sequence[Action],
    seed: int = 0,
) -> List[Action]:
    """A uniformly-flavored random sampling of ``t``.

    For each faulty location, keeps a random prefix of its outputs; keeps
    each location's first crash event and drops later (duplicate) crash
    events with probability 1/2; keeps everything at live locations.
    """
    rng = random.Random(seed)
    faulty = faulty_locations(t)
    keep_counts = {}
    for i in faulty:
        total = len(outputs_at(t, i))
        keep_counts[i] = rng.randint(0, total)
    first_crash_seen: Set[int] = set()
    emitted = {i: 0 for i in faulty}
    result: List[Action] = []
    for a in t:
        if is_crash(a):
            if a.location not in first_crash_seen:
                first_crash_seen.add(a.location)
                result.append(a)
            elif rng.random() < 0.5:
                result.append(a)
        elif a.location in faulty:
            if emitted[a.location] < keep_counts[a.location]:
                emitted[a.location] += 1
                result.append(a)
        else:
            result.append(a)
    return result


def enumerate_samplings(
    t: Sequence[Action],
    max_results: Optional[int] = None,
) -> Iterator[List[Action]]:
    """All samplings of ``t`` (exponential; use only on short sequences).

    Enumerates every combination of (prefix length of outputs per faulty
    location) x (subset of removable duplicate crash events).
    """
    t = list(t)
    faulty = sorted(faulty_locations(t))
    # Indices of duplicate crash events (first crash per location must stay).
    seen: Set[int] = set()
    removable_crashes: List[int] = []
    for k, a in enumerate(t):
        if is_crash(a):
            if a.location in seen:
                removable_crashes.append(k)
            else:
                seen.add(a.location)
    prefix_choices = [
        range(len(outputs_at(t, i)) + 1) for i in faulty
    ]
    count = 0
    for prefix_lens in itertools.product(*prefix_choices):
        keep = dict(zip(faulty, prefix_lens))
        for removed in _all_subsets(removable_crashes):
            emitted = {i: 0 for i in faulty}
            sampling: List[Action] = []
            for k, a in enumerate(t):
                if k in removed:
                    continue
                if is_crash(a):
                    sampling.append(a)
                elif a.location in keep:
                    if emitted[a.location] < keep[a.location]:
                        emitted[a.location] += 1
                        sampling.append(a)
                else:
                    sampling.append(a)
            yield sampling
            count += 1
            if max_results is not None and count >= max_results:
                return


def _all_subsets(items: List[int]) -> Iterator[Set[int]]:
    for r in range(len(items) + 1):
        for combo in itertools.combinations(items, r):
            yield set(combo)
