"""The paper's primary contribution: asynchronous failure detectors.

This package defines AFDs as crash problems (Section 3), the three defining
properties (validity, closure under sampling, closure under constrained
reordering), renamings (Section 5.3), solvability relations (Section 5),
the self-implementation algorithm A^self (Section 6, Algorithm 3), and the
weakest/representative notions of Section 7.
"""

from repro.core.validity import (
    ValidityReport,
    faulty_locations,
    first_crash_index,
    is_valid_finite,
    live_locations,
)
from repro.core.sampling import (
    enumerate_samplings,
    is_sampling_of,
    random_sampling,
)
from repro.core.reordering import (
    constrained_predecessors,
    enumerate_constrained_reorderings,
    is_constrained_reordering_of,
    random_constrained_reordering,
)
from repro.core.renaming import Renaming
from repro.core.afd import AFD, CheckResult
from repro.core.self_implementation import (
    SelfImplementationProcess,
    self_implementation_algorithm,
)
from repro.core.ordering import (
    Reduction,
    ReductionOutcome,
    evaluate_reduction,
)
from repro.core.representative import (
    RepresentativeVerdict,
    is_weakest_candidate,
)

__all__ = [
    "ValidityReport",
    "faulty_locations",
    "first_crash_index",
    "is_valid_finite",
    "live_locations",
    "enumerate_samplings",
    "is_sampling_of",
    "random_sampling",
    "constrained_predecessors",
    "enumerate_constrained_reorderings",
    "is_constrained_reordering_of",
    "random_constrained_reordering",
    "Renaming",
    "AFD",
    "CheckResult",
    "SelfImplementationProcess",
    "self_implementation_algorithm",
    "Reduction",
    "ReductionOutcome",
    "evaluate_reduction",
    "RepresentativeVerdict",
    "is_weakest_candidate",
]
