"""Solvability relations between crash problems and AFDs (Section 5).

``P' ⪰_E P`` ("P' is sufficient to solve P in environment E") holds iff
some distributed algorithm A solves P using P' in E: in every fair trace
of the composed system, if the events of P' conform to T_{P'}, then the
events of P conform to T_P.

For AFDs the environment is irrelevant (Lemma 1), giving the detector
order ``D ⪰ D'`` ("D is stronger than D'").  :class:`Reduction` packages a
witness algorithm for one ⪰ edge; :func:`evaluate_reduction` runs it under
a fault pattern and checks the implication on the resulting trace, which
is how the experiments validate Theorem 15 (transitivity), Theorem 18 and
Corollary 19 (stronger detectors solve more problems).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton
from repro.ioa.composition import Composition
from repro.ioa.scheduler import Scheduler, SchedulerPolicy
from repro.core.afd import AFD, CheckResult
from repro.system.crash import CrashAutomaton
from repro.system.fault_pattern import FaultPattern
from repro.system.process import DistributedAlgorithm


@dataclass
class ReductionOutcome:
    """The result of running a reduction under one fault pattern.

    ``holds`` is the implication the definition of ⪰ requires: *if* the
    source-detector events conform to T_source, *then* the target events
    conform to T_target.  ``premise``/``conclusion`` carry the detailed
    check results.
    """

    premise: CheckResult
    conclusion: CheckResult
    source_events: List[Action] = field(default_factory=list)
    target_events: List[Action] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return (not self.premise.ok) or self.conclusion.ok

    @property
    def vacuous(self) -> bool:
        """True when the premise failed (the implication holds trivially)."""
        return not self.premise.ok


@dataclass
class Reduction:
    """A witness that ``source ⪰ target``: an algorithm transforming
    source-detector outputs into target-detector outputs.

    Parameters
    ----------
    source_factory / target_factory:
        ``factory(locations) -> AFD``.
    algorithm_factory:
        ``factory(locations) -> DistributedAlgorithm`` building the
        transformation algorithm.
    name:
        Label, e.g. ``"P>=Omega"``.
    needs_channels:
        Whether the witness algorithm exchanges messages (the
        completeness-boosting reductions do; per-event relays do not).
    """

    name: str
    source_factory: Callable[[Sequence[int]], AFD]
    target_factory: Callable[[Sequence[int]], AFD]
    algorithm_factory: Callable[[Sequence[int]], DistributedAlgorithm]
    needs_channels: bool = False

    def instantiate(self, locations: Sequence[int]):
        return (
            self.source_factory(locations),
            self.target_factory(locations),
            self.algorithm_factory(locations),
        )


def evaluate_reduction(
    source: AFD,
    target: AFD,
    algorithm: DistributedAlgorithm,
    fault_pattern: FaultPattern,
    max_steps: int = 600,
    policy: Optional[SchedulerPolicy] = None,
    source_automaton: Optional[Automaton] = None,
    extra_components: Sequence[Automaton] = (),
    min_live_outputs: int = 1,
    include_channels: bool = False,
) -> ReductionOutcome:
    """Run ``algorithm`` fed by the source detector's generator automaton
    and check the ⪰ implication on the resulting trace.

    The system composed is: source generator + algorithm processes + crash
    automaton (+ any ``extra_components``).  Per-event relays exchange no
    messages so channels are omitted by default; pass
    ``include_channels=True`` for message-passing witnesses such as the
    completeness-boosting algorithm.
    """
    from repro.system.channel import make_channels

    components: List[Automaton] = [
        source_automaton if source_automaton is not None else source.automaton()
    ]
    components.extend(algorithm.automata())
    components.append(CrashAutomaton(list(source.locations)))
    if include_channels:
        components.extend(make_channels(list(source.locations)))
    components.extend(extra_components)
    system = Composition(components, name=f"reduce({source.name}->{target.name})")
    scheduler = Scheduler(policy)
    execution = scheduler.run(
        system,
        max_steps=max_steps,
        injections=fault_pattern.injections(),
    )
    events = list(execution.actions)
    source_events = source.project_events(events)
    target_events = target.project_events(events)
    premise = source.check_limit(source_events, min_live_outputs)
    conclusion = target.check_limit(target_events, min_live_outputs)
    return ReductionOutcome(
        premise=premise,
        conclusion=conclusion,
        source_events=source_events,
        target_events=target_events,
    )


def compose_reduction_algorithms(
    first: DistributedAlgorithm, second: DistributedAlgorithm
) -> List[Automaton]:
    """The automata of both stages of a stacked reduction (Theorem 15):
    the first stage's outputs feed the second stage's inputs when the two
    collections are composed into one system."""
    return list(first.automata()) + list(second.automata())
