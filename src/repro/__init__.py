"""repro: an executable reproduction of *Asynchronous Failure Detectors*
(Cornejo, Lynch, Sastry; PODC 2012 / MIT-CSAIL-TR-2013-025).

Subpackages
-----------
``repro.ioa``
    The I/O automata substrate: automata, executions, composition,
    fairness, and the simulation engine (paper Section 2).
``repro.system``
    The asynchronous system model: processes, reliable FIFO channels, the
    crash automaton, environments (Section 4).
``repro.core``
    The paper's contribution: the AFD definition and its closure
    properties, renamings, solvability relations, Algorithm 3
    (self-implementation), weakest/representative notions (Sections 3,
    5-7).
``repro.detectors``
    The AFD zoo - Omega, P, EvP, Sigma, anti-Omega, Omega^k, Psi^k, S, EvS
    - plus the non-AFD counterexamples (Sections 3.3, 3.4, 10.1).
``repro.problems``
    Crash problems: consensus, k-set agreement, leader election, NBAC,
    TRB; bounded-problem machinery (Sections 3.1, 7.3, 9.1).
``repro.algorithms``
    Consensus with Omega and with P; detector relays; the Section 10.1
    participant reductions.
``repro.tree``
    The tagged tree of executions, valence, hooks (Sections 8-9).
``repro.analysis``
    Experiment runners, the hierarchy graph, statistics.
``repro.runner``
    The parallel seeded experiment engine: ``ExperimentSpec`` /
    ``BatchRunner`` / ``sweep`` (deterministic multi-core fan-out).
``repro.faults``
    Seeded fault injection (chaos): ``FaultPlan``, faulty channel
    automata, adversarial crash rules, trace-conformance oracles.
``repro.obs``
    Observability: tracing, metrics, run reports, bench artifacts.
``repro.lint``
    Two-layer static analysis: the semantic I/O-automaton contract
    checker and the determinism-convention AST linter
    (``python -m repro.lint``).
``repro.api``
    The stable facade; every name below is also importable from
    ``repro`` directly.

Quickstart
----------
>>> import repro
>>> locations = (0, 1, 2)
>>> spec = repro.ExperimentSpec(
...     algorithm=repro.omega_consensus_algorithm,
...     detector="omega",
...     locations=locations,
...     proposals={0: 1, 1: 0, 2: 1},
...     crashes={0: 10},
...     f=1,
... )
>>> spec.run().solved
True

Sweeps fan out across cores with the same results as a serial run:

>>> batch = repro.BatchRunner(jobs=2).run(
...     repro.sweep(spec, seeds=4, fault_patterns=[{}, {0: 10}]))
>>> all(r.solved for r in batch)
True
"""

__version__ = "1.8.0"


# Lazy facade (PEP 562): ``repro.<name>`` resolves through repro.api on
# first touch, so ``import repro`` stays cheap and the submodule CLIs
# (python -m repro.obs.report, ...) import nothing extra.
def __getattr__(name):
    from importlib import import_module

    api = import_module("repro.api")
    if name in api.__all__:
        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    from importlib import import_module

    return sorted(
        set(globals()) | set(import_module("repro.api").__all__)
    )
