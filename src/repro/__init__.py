"""repro: an executable reproduction of *Asynchronous Failure Detectors*
(Cornejo, Lynch, Sastry; PODC 2012 / MIT-CSAIL-TR-2013-025).

Subpackages
-----------
``repro.ioa``
    The I/O automata substrate: automata, executions, composition,
    fairness, and the simulation engine (paper Section 2).
``repro.system``
    The asynchronous system model: processes, reliable FIFO channels, the
    crash automaton, environments (Section 4).
``repro.core``
    The paper's contribution: the AFD definition and its closure
    properties, renamings, solvability relations, Algorithm 3
    (self-implementation), weakest/representative notions (Sections 3,
    5-7).
``repro.detectors``
    The AFD zoo - Omega, P, EvP, Sigma, anti-Omega, Omega^k, Psi^k, S, EvS
    - plus the non-AFD counterexamples (Sections 3.3, 3.4, 10.1).
``repro.problems``
    Crash problems: consensus, k-set agreement, leader election, NBAC,
    TRB; bounded-problem machinery (Sections 3.1, 7.3, 9.1).
``repro.algorithms``
    Consensus with Omega and with P; detector relays; the Section 10.1
    participant reductions.
``repro.tree``
    The tagged tree of executions, valence, hooks (Sections 8-9).
``repro.analysis``
    Experiment runners, the hierarchy graph, statistics.

Quickstart
----------
>>> from repro.detectors import Omega
>>> from repro.algorithms import omega_consensus_algorithm
>>> from repro.analysis import run_consensus_experiment
>>> from repro.system import FaultPattern
>>> locations = (0, 1, 2)
>>> result = run_consensus_experiment(
...     omega_consensus_algorithm(locations),
...     Omega(locations),
...     proposals={0: 1, 1: 0, 2: 1},
...     fault_pattern=FaultPattern({0: 10}, locations),
...     f=1,
... )
>>> result.solved
True
"""

__version__ = "1.0.0"
