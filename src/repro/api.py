"""The stable one-stop facade: everything a user needs to run experiments.

The library spans eight subpackages; running one experiment used to mean
importing from five of them.  ``repro.api`` (also re-exported lazily
from the top-level ``repro`` package) collects the supported surface:

>>> from repro.api import ExperimentSpec, BatchRunner, sweep
>>> from repro.algorithms import omega_consensus_algorithm
>>> base = ExperimentSpec(
...     algorithm=omega_consensus_algorithm,
...     detector="omega",
...     locations=(0, 1, 2),
...     crashes={0: 10},
...     f=1,
... )
>>> batch = BatchRunner(jobs=1).run(sweep(base, fault_patterns=[{}, {0: 5}]))
>>> all(r.solved for r in batch)
True

Anything importable from here is covered by the deprecation policy:
renames keep a warning shim for at least one release.
"""

from __future__ import annotations

# -- The experiment engine (repro.runner) -----------------------------------
from repro.runner import (
    BatchResult,
    BatchRunner,
    ExperimentResult,
    ExperimentSpec,
    default_jobs,
    derive_seed,
    derive_seeds,
    parallel_map,
    run_spec,
    sweep,
)

# -- One-run experiment helpers (repro.analysis) ----------------------------
from repro.analysis.checkers import ConsensusRunResult, run_consensus_experiment

# -- Result caching and sharded sweeps (repro.cache) ------------------------
from repro.cache import (
    CACHE_SCHEMA,
    ENGINE_REVISION,
    ResultStore,
    SHARD_SCHEMA,
    ShardManifest,
    cacheable,
    run_sharded,
    shard_manifest,
)

# -- The compiled simulation core (repro.compiled) --------------------------
from repro.compiled import (
    CompiledAutomaton,
    CompiledComposition,
    CompiledSystem,
    CompiledSystemMeta,
    Interner,
    compile_automaton,
    compile_spec,
    compiled_default,
    set_compiled_default,
)

# -- The system model (repro.system / repro.ioa) ----------------------------
from repro.ioa.scheduler import (
    AdversarialPolicy,
    Injection,
    RandomPolicy,
    RoundRobinPolicy,
    Scheduler,
    SchedulerPolicy,
)
from repro.system.fault_pattern import FaultPattern
from repro.system.network import System, SystemBuilder, assemble_system

# -- The detector zoo (repro.detectors) -------------------------------------
from repro.core.afd import AFD, check_afd_closure_properties
from repro.detectors.anti_omega import AntiOmega
from repro.detectors.eventually_perfect import EventuallyPerfect
from repro.detectors.omega import Omega
from repro.detectors.omega_k import OmegaK
from repro.detectors.perfect import Perfect
from repro.detectors.psi_k import PsiK
from repro.detectors.quorum import Sigma
from repro.detectors.registry import (
    ZOO,
    detector_names,
    instantiate_for_lint,
    iter_registered_automata,
    make_detector,
    resolve_detector,
)
from repro.detectors.strong import EventuallyStrong, Strong
from repro.detectors.weak import (
    EventuallyQuasi,
    EventuallyWeak,
    Quasi,
    Weak,
)

# -- Timed implementations (repro.timed) -------------------------------------
from repro.timed import (
    DelayModel,
    HeartbeatDetector,
    LeaderLeaseDetector,
    PingPongDetector,
    TimedDetectorAutomaton,
    TimedNetwork,
    TimedParams,
)
from repro.timed.registry import (
    build_automaton as build_timed_automaton,
    implementation_names as timed_implementation_names,
    target_afd as timed_target_afd,
)

# -- Consensus algorithm factories (repro.algorithms) -----------------------
from repro.algorithms.consensus_ct import ct_consensus_algorithm
from repro.algorithms.consensus_omega import omega_consensus_algorithm
from repro.algorithms.consensus_perfect import perfect_consensus_algorithm

# -- Fault injection and conformance oracles (repro.faults) -----------------
from repro.faults import (
    ChannelFaults,
    ChaosChannel,
    ConformanceReport,
    CrashRule,
    CrashRuleController,
    DelayingChannel,
    DuplicatingChannel,
    FaultPlan,
    LossyChannel,
    OracleVerdict,
    ReorderingChannel,
    TraceOracle,
    channel_integrity_oracles,
    consensus_oracles,
    make_faulty_channels,
    run_oracles,
)

# -- Observability (repro.obs) ----------------------------------------------
from repro.obs.compare import (
    SeriesDrift,
    compare_docs,
    compare_files,
    compare_series,
    first_divergence,
)
from repro.obs.instrument import Instrumentation, coerce_instrument
from repro.obs.ledger import (
    RunLedger,
    series_digest,
    spec_digest,
    spec_fingerprint,
    validate_ledger_entry,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.prof import (
    CacheCounter,
    StepProfiler,
    cache_counter,
    cache_stats_delta,
    cache_stats_snapshot,
    reset_cache_stats,
    validate_profile,
)
from repro.obs.report import RunReport, build_run_report
from repro.obs.schema import make_bench_artifact, validate_bench_artifact
from repro.obs.trace import MultiObserver, Observer, TraceRecorder

# -- Static analysis (repro.lint) -------------------------------------------
from repro.lint import (
    ContractReport,
    ContractSubject,
    Finding,
    LintResult,
    check_automaton_contract,
    check_picklable,
    default_contract_subjects,
    lint_paths,
    run_contract_checks,
)

def compile(target):  # noqa: A001 - deliberate facade name, like ``re.compile``
    """Compile ``target`` for the array step loop (the v2 run surface).

    Two shapes are accepted:

    * an :class:`~repro.runner.spec.ExperimentSpec` — returns the
      (process-cached) :class:`~repro.compiled.system.CompiledSystem`;
      call ``.run(seed=..., crashes=...)`` for per-run overrides, every
      run reusing the interned state tables;
    * a bare :class:`~repro.ioa.automaton.Automaton` (or composition) —
      returns the memoised
      :class:`~repro.compiled.tables.CompiledAutomaton` core.

    Both produce traces byte-identical to the interpreted
    :class:`~repro.ioa.scheduler.Scheduler` path, which stays available
    (and is CI-compared against the compiled path) as the oracle.

    >>> from repro.api import ExperimentSpec, compile
    >>> from repro.algorithms import omega_consensus_algorithm
    >>> cs = compile(ExperimentSpec(
    ...     algorithm=omega_consensus_algorithm,
    ...     detector="omega",
    ...     locations=(0, 1, 2),
    ...     f=1,
    ... ))
    >>> cs.run(crashes={0: 10}).solved
    True
    """
    from repro.ioa.automaton import Automaton
    from repro.runner.spec import ExperimentSpec as _Spec

    if isinstance(target, _Spec):
        return compile_spec(target)
    if isinstance(target, Automaton):
        return compile_automaton(target)
    raise TypeError(
        "repro.api.compile expects an ExperimentSpec or an Automaton, "
        f"got {type(target).__name__}"
    )


__all__ = [
    # engine
    "BatchResult",
    "BatchRunner",
    "ExperimentResult",
    "ExperimentSpec",
    "default_jobs",
    "derive_seed",
    "derive_seeds",
    "parallel_map",
    "run_spec",
    "sweep",
    # one-run helpers
    "ConsensusRunResult",
    "run_consensus_experiment",
    # result cache / sharded sweeps
    "CACHE_SCHEMA",
    "ENGINE_REVISION",
    "ResultStore",
    "SHARD_SCHEMA",
    "ShardManifest",
    "cacheable",
    "run_sharded",
    "shard_manifest",
    # compiled core
    "CompiledAutomaton",
    "CompiledComposition",
    "CompiledSystem",
    "CompiledSystemMeta",
    "Interner",
    "compile",
    "compile_automaton",
    "compile_spec",
    "compiled_default",
    "set_compiled_default",
    # system model
    "AdversarialPolicy",
    "FaultPattern",
    "Injection",
    "RandomPolicy",
    "RoundRobinPolicy",
    "Scheduler",
    "SchedulerPolicy",
    "System",
    "SystemBuilder",
    "assemble_system",
    # detectors
    "AFD",
    "AntiOmega",
    "EventuallyPerfect",
    "EventuallyQuasi",
    "EventuallyStrong",
    "EventuallyWeak",
    "Omega",
    "OmegaK",
    "Perfect",
    "PsiK",
    "Quasi",
    "Sigma",
    "Strong",
    "Weak",
    "ZOO",
    "check_afd_closure_properties",
    "detector_names",
    "instantiate_for_lint",
    "iter_registered_automata",
    "make_detector",
    "resolve_detector",
    # timed implementations
    "DelayModel",
    "HeartbeatDetector",
    "LeaderLeaseDetector",
    "PingPongDetector",
    "TimedDetectorAutomaton",
    "TimedNetwork",
    "TimedParams",
    "build_timed_automaton",
    "timed_implementation_names",
    "timed_target_afd",
    # algorithms
    "ct_consensus_algorithm",
    "omega_consensus_algorithm",
    "perfect_consensus_algorithm",
    # fault injection / oracles
    "ChannelFaults",
    "ChaosChannel",
    "ConformanceReport",
    "CrashRule",
    "CrashRuleController",
    "DelayingChannel",
    "DuplicatingChannel",
    "FaultPlan",
    "LossyChannel",
    "OracleVerdict",
    "ReorderingChannel",
    "TraceOracle",
    "channel_integrity_oracles",
    "consensus_oracles",
    "make_faulty_channels",
    "run_oracles",
    # observability
    "CacheCounter",
    "Instrumentation",
    "MetricsRegistry",
    "MultiObserver",
    "Observer",
    "RunLedger",
    "RunReport",
    "SeriesDrift",
    "StepProfiler",
    "TraceRecorder",
    "build_run_report",
    "cache_counter",
    "cache_stats_delta",
    "cache_stats_snapshot",
    "coerce_instrument",
    "compare_docs",
    "compare_files",
    "compare_series",
    "first_divergence",
    "make_bench_artifact",
    "reset_cache_stats",
    "series_digest",
    "spec_digest",
    "spec_fingerprint",
    "validate_bench_artifact",
    "validate_ledger_entry",
    "validate_profile",
    # static analysis
    "ContractReport",
    "ContractSubject",
    "Finding",
    "LintResult",
    "check_automaton_contract",
    "check_picklable",
    "default_contract_subjects",
    "lint_paths",
    "run_contract_checks",
]
