"""The I/O automaton base class (Section 2.1).

An automaton is a state machine with a signature, a set of (initial) states,
a transition relation, and a partition of its locally controlled actions into
*tasks*.  Tasks drive the fairness definition (Section 2.4): a fair execution
gives every task infinitely many chances to perform a step.

States are required to be immutable, hashable values: transitions are pure
functions ``apply(state, action) -> state``.  This makes executions
replayable, makes composition states simple tuples, and makes the tagged
tree of Section 8 (which memoizes configurations) possible.

Design notes
------------
* Input actions must be enabled in every state: ``apply`` must accept any
  input action in any state (possibly as a no-op).
* The paper allows locally controlled actions that belong to no task (the
  crash automaton of Section 4.4 is the canonical example: *every* sequence
  over the crash actions is one of its fair traces, so no fairness
  obligation may attach to them).  ``task_of`` returns ``None`` for such
  "free" actions, and the fairness machinery ignores them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.ioa.actions import Action
from repro.ioa.signature import Signature

State = Hashable


class Automaton(ABC):
    """Abstract base class for I/O automata.

    Subclasses implement :attr:`signature`, :meth:`initial_state`,
    :meth:`apply` and :meth:`enabled_locally`, and may declare tasks via
    :meth:`tasks` / :meth:`task_of`.
    """

    def __init__(self, name: str):
        self.name = name

    # ------------------------------------------------------------------
    # Signature and states
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def signature(self) -> Signature:
        """The automaton's signature."""

    @abstractmethod
    def initial_state(self) -> State:
        """The (unique, for our purposes) initial state."""

    # ------------------------------------------------------------------
    # Transition relation
    # ------------------------------------------------------------------

    @abstractmethod
    def apply(self, state: State, action: Action) -> State:
        """Apply ``action`` in ``state`` and return the resulting state.

        For input actions this must succeed in every state (input actions
        are enabled everywhere, Section 2.1).  For locally controlled
        actions the caller must first check :meth:`enabled`.
        """

    @abstractmethod
    def enabled_locally(self, state: State) -> Iterable[Action]:
        """All locally controlled actions enabled in ``state``."""

    def enabled(self, state: State, action: Action) -> bool:
        """Whether ``action`` is enabled in ``state``.

        Input actions are enabled in every state.  Locally controlled
        actions are enabled iff they appear in :meth:`enabled_locally`.
        Subclasses may override with a faster check.
        """
        if self.signature.is_input(action):
            return True
        return action in set(self.enabled_locally(state))

    # ------------------------------------------------------------------
    # Tasks (fairness classes)
    # ------------------------------------------------------------------

    def tasks(self) -> Sequence[str]:
        """The names of this automaton's tasks.

        The default is a single task containing every locally controlled
        action, matching the definition of a deterministic automaton
        (Section 2.5).  Automata whose actions carry no fairness
        obligation (the crash automaton) return an empty sequence.
        """
        return ("main",)

    def task_of(self, action: Action) -> Optional[str]:
        """The task the (locally controlled) ``action`` belongs to.

        Returns ``None`` for input actions and for locally controlled
        actions with no fairness obligation.  The default implementation
        can only express the two extreme partitions: an automaton with no
        tasks (every locally controlled action is obligation-free, the
        crash automaton) maps everything to ``None``, and an automaton
        with exactly one task maps every locally controlled action into
        it.  An automaton that declares several tasks, or whose task
        covers only part of its locally controlled actions, carries
        information the base class does not have and must override this
        method; the default raises ``NotImplementedError`` rather than
        silently assigning every action to the first task.
        """
        tasks = self.tasks()
        if not tasks:
            return None
        if not self.signature.is_locally_controlled(action):
            return None
        if len(tasks) > 1:
            raise NotImplementedError(
                f"{type(self).__name__} declares {len(tasks)} tasks but "
                "does not override task_of(); the default can only assign "
                "actions for single-task automata"
            )
        return tasks[0]

    def enabled_in_task(self, state: State, task: str) -> Tuple[Action, ...]:
        """The enabled locally controlled actions of ``task`` in ``state``."""
        return tuple(
            a for a in self.enabled_locally(state) if self.task_of(a) == task
        )

    def enabled_by_task(self, state: State) -> Dict[str, Tuple[Action, ...]]:
        """All enabled locally controlled actions, grouped by task.

        One shared snapshot for a whole scheduler step: a single pass over
        :meth:`enabled_locally` replaces one :meth:`enabled_in_task`
        enumeration *per task*.  Tasks with nothing enabled are absent
        from the result; actions whose :meth:`task_of` is ``None``
        (obligation-free actions) are excluded, exactly as they are from
        every ``enabled_in_task`` result.  Within each task, actions keep
        their :meth:`enabled_locally` iteration order, so
        ``snapshot.get(task, ())`` equals ``enabled_in_task(state, task)``
        for every declared task.

        Because enabledness is a pure function of the state (states are
        immutable and ``apply`` is pure), results may be cached keyed on
        the state; :class:`~repro.ioa.composition.Composition` overrides
        this with a memoized per-component version.
        """
        grouped: Dict[str, List[Action]] = {}
        for action in self.enabled_locally(state):
            task = self.task_of(action)
            if task is None:
                continue
            bucket = grouped.get(task)
            if bucket is None:
                grouped[task] = [action]
            else:
                bucket.append(action)
        return {task: tuple(actions) for task, actions in grouped.items()}

    def task_enabled(self, state: State, task: str) -> bool:
        """Whether ``task`` has some enabled action in ``state``."""
        return bool(self.enabled_in_task(state, task))

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def participates(self, action: Action) -> bool:
        """Whether ``action`` is in this automaton's signature."""
        return action in self.signature

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class FunctionalAutomaton(Automaton):
    """An automaton assembled from plain functions.

    Useful in tests and examples where defining a subclass is overkill.

    Parameters
    ----------
    name:
        The automaton's name.
    signature:
        Its signature.
    initial:
        Its initial state (an immutable value).
    transition:
        ``transition(state, action) -> state``.
    enabled_fn:
        ``enabled_fn(state) -> iterable of enabled locally controlled
        actions``.
    task_names:
        Task names; default a single ``"main"`` task.
    task_assignment:
        ``task_assignment(action) -> task name`` for locally controlled
        actions; default: everything in the first task.
    """

    def __init__(
        self,
        name: str,
        signature: Signature,
        initial: State,
        transition: Callable[[State, Action], State],
        enabled_fn: Callable[[State], Iterable[Action]],
        task_names: Sequence[str] = ("main",),
        task_assignment: Optional[Callable[[Action], Optional[str]]] = None,
    ):
        super().__init__(name)
        self._signature = signature
        self._initial = initial
        self._transition = transition
        self._enabled_fn = enabled_fn
        self._task_names = tuple(task_names)
        self._task_assignment = task_assignment

    @property
    def signature(self) -> Signature:
        return self._signature

    def initial_state(self) -> State:
        return self._initial

    def apply(self, state: State, action: Action) -> State:
        return self._transition(state, action)

    def enabled_locally(self, state: State) -> Iterable[Action]:
        return self._enabled_fn(state)

    def tasks(self) -> Sequence[str]:
        return self._task_names

    def task_of(self, action: Action) -> Optional[str]:
        if self._task_assignment is not None:
            return self._task_assignment(action)
        return super().task_of(action)
