"""The simulation engine: producing fair executions of automata.

The paper quantifies over fair executions of compositions (Section 2.4).
The scheduler resolves the two sources of nondeterminism in a run:

* *which task moves next* — resolved by a :class:`SchedulerPolicy`
  (round-robin and seeded-random policies guarantee that every task is
  offered a turn infinitely often, so maximal runs are fair and truncated
  runs are prefixes of fair executions);
* *when environment-style free actions occur* (crash events, whose
  automaton has no fairness obligation, Section 4.4) — resolved by
  :class:`Injection` plans supplied by the experiment.
"""

from __future__ import annotations

import random
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton, State
from repro.ioa.executions import Execution
from repro.obs.prof import cache_stats_delta, cache_stats_snapshot

#: The chaos channels' internal delay-aging action
#: (:data:`repro.faults.channels.TICK`); the profiled loop books its
#: applies under the dedicated ``chan-tick`` phase.
CHAN_TICK = "chan-tick"


def _export_cache_metrics(metrics, cache_base) -> None:
    """Book this run's cache activity into ``metrics`` as
    ``cache.<memo>.<kind>`` counters (zero-activity memos skipped)."""
    for name, stats in cache_stats_delta(cache_base).items():
        for kind in ("hits", "misses", "evictions"):
            if stats[kind]:
                metrics.counter(f"cache.{name}.{kind}").inc(stats[kind])


#: Process-wide fallback profiler (see :func:`set_default_profiler`).
_DEFAULT_PROFILER = None


def set_default_profiler(profiler):
    """Install a process-wide fallback :class:`~repro.obs.prof.StepProfiler`.

    Schedulers constructed *after* this call with no profiler of their
    own adopt it — the seam the benchmark CLIs' ``--profile`` flag uses
    to profile kernels that build their schedulers internally.  The cost
    model is unchanged: the check happens once at ``Scheduler``
    construction, never in the step loop, and an explicit
    ``instrument=`` profiler always wins.  Returns the previous default
    so callers can restore it (``try/finally``), mirroring
    :func:`repro.ioa.composition.set_enabled_cache_default`.
    """
    global _DEFAULT_PROFILER
    previous = _DEFAULT_PROFILER
    _DEFAULT_PROFILER = profiler
    return previous


@dataclass(frozen=True)
class Injection:
    """Fire ``action`` at global step ``step`` (before the policy's turn).

    Used for crash events and other adversary-controlled free actions.
    If the action is not enabled at that step the injection is an error:
    crash actions are enabled in every state, so this only triggers on
    misconfigured plans.
    """

    step: int
    action: Action


class SchedulerPolicy(ABC):
    """Chooses the next locally controlled action to perform."""

    @abstractmethod
    def choose(
        self, automaton: Automaton, state: State, step: int
    ) -> Optional[Action]:
        """The next action to fire, or ``None`` if nothing is enabled."""

    def reset(self) -> None:
        """Forget any internal position; called at the start of a run."""


class RoundRobinPolicy(SchedulerPolicy):
    """Cycle over the automaton's tasks, firing the first enabled action.

    Every task is offered a turn once per cycle, so maximal runs under this
    policy are fair.  Within a task, the least action (actions order
    lexicographically) is chosen, making runs fully deterministic.
    """

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def choose(
        self, automaton: Automaton, state: State, step: int
    ) -> Optional[Action]:
        tasks = automaton.tasks()
        if not tasks:
            return None
        # One enabled snapshot for the whole step (grouped by task) instead
        # of one enabled_in_task enumeration per task.
        snapshot = automaton.enabled_by_task(state)
        if not snapshot:
            return None
        n = len(tasks)
        for offset in range(n):
            task = tasks[(self._cursor + offset) % n]
            enabled = snapshot.get(task)
            if enabled:
                self._cursor = (self._cursor + offset + 1) % n
                return min(enabled)
        return None


class RandomPolicy(SchedulerPolicy):
    """Pick a uniformly random enabled task, then a random enabled action.

    Fair with probability 1 over infinite runs.  Fully reproducible given
    the seed.
    """

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def choose(
        self, automaton: Automaton, state: State, step: int
    ) -> Optional[Action]:
        # One snapshot per step; candidates keep tasks() order so the
        # RNG draws — and hence the runs — are identical to the
        # per-task-enumeration implementation.
        snapshot = automaton.enabled_by_task(state)
        if not snapshot:
            return None
        candidates: List[Tuple[str, Tuple[Action, ...]]] = [
            (task, snapshot[task])
            for task in automaton.tasks()
            if task in snapshot
        ]
        if not candidates:
            return None
        _, enabled = self._rng.choice(candidates)
        return self._rng.choice(sorted(enabled))


class AdversarialPolicy(SchedulerPolicy):
    """A policy driven by a caller-supplied choice function.

    ``chooser(state, options, step)`` receives the scheduler's *current
    state* (the automaton state the chosen action will fire in), the list
    of (task, enabled actions) pairs, and the step number; it returns the
    action to fire, or ``None`` to pass the turn to the fallback policy.
    A fallback (default: round-robin) keeps maximal runs fair when the
    adversary abstains.

    Used by the FLP-baseline experiment (E11) to stall consensus runs.
    """

    def __init__(
        self,
        chooser: Callable[
            [State, Sequence[Tuple[str, Tuple[Action, ...]]], int],
            Optional[Action],
        ],
        fallback: Optional[SchedulerPolicy] = None,
    ):
        self._chooser = chooser
        self._fallback = fallback or RoundRobinPolicy()

    def reset(self) -> None:
        self._fallback.reset()

    def choose(
        self, automaton: Automaton, state: State, step: int
    ) -> Optional[Action]:
        snapshot = automaton.enabled_by_task(state)
        options: List[Tuple[str, Tuple[Action, ...]]] = [
            (task, snapshot[task])
            for task in automaton.tasks()
            if task in snapshot
        ]
        if not options:
            return None
        chosen = self._chooser(state, options, step)
        if chosen is not None:
            return chosen
        return self._fallback.choose(automaton, state, step)


class Scheduler:
    """Runs an automaton under a policy, with optional injections.

    Parameters
    ----------
    policy:
        The scheduling policy; default round-robin.
    instrument:
        Anything :func:`repro.obs.instrument.coerce_instrument` accepts:
        an :class:`repro.obs.trace.Observer` notified of run start/end,
        scheduled steps and fired actions; a
        :class:`repro.obs.metrics.MetricsRegistry` recording
        ``scheduler.runs`` / ``scheduler.steps`` counters, a
        ``scheduler.run_wall_s`` histogram and per-run ``cache.*``
        deltas; a :class:`repro.obs.prof.StepProfiler` routing the run
        through the phase-accounted twin loop (``_run_profiled``) —
        identical executions, per-phase cost books; an
        :class:`~repro.obs.instrument.Instrumentation` bundle; or a tuple
        of those.  ``None`` (the default) keeps the hot loop free of
        tracing work: no observer means no per-step object is allocated
        and the only cost is one ``is not None`` test per event — with
        no profiler the unprofiled loop below runs byte-for-byte as
        before (one ``is not None`` test per run, not per step).
    compiled:
        ``True`` routes :meth:`run` through the compiled core
        (:mod:`repro.compiled`): the automaton is lowered once into
        interned-id tables (cached per automaton instance) and executed
        by the array step loop — same executions, same observer/metrics
        protocol, table-replay speed.  ``False`` forces the interpreted
        loop; ``None`` (default) defers to the process default
        (:func:`repro.compiled.config.set_compiled_default`,
        ``REPRO_COMPILED=1``), which is off unless opted into — the
        interpreted path below remains the oracle.

    Examples
    --------
    >>> from repro.detectors.omega import OmegaAutomaton
    >>> sched = Scheduler()
    >>> fd = OmegaAutomaton(locations=(0, 1))
    >>> execution = sched.run(fd, max_steps=6)
    >>> len(execution)
    6
    """

    def __init__(
        self,
        policy: Optional[SchedulerPolicy] = None,
        instrument=None,
        compiled: Optional[bool] = None,
    ):
        from repro.obs.instrument import coerce_instrument

        bundle = coerce_instrument(instrument)
        self.policy = policy or RoundRobinPolicy()
        self.compiled = compiled
        self.observer = bundle.observer
        self.profiler = (
            bundle.profiler
            if bundle.profiler is not None
            else _DEFAULT_PROFILER
        )
        self._metrics = bundle.metrics

    def attach_metrics(self, registry) -> "Scheduler":
        """Record per-run scheduler metrics into ``registry``; returns self."""
        self._metrics = registry
        return self

    def run(
        self,
        automaton: Automaton,
        max_steps: int,
        injections: Iterable[Injection] = (),
        stop_when: Optional[Callable[[State, int], bool]] = None,
        start: Optional[State] = None,
    ) -> Execution:
        """Produce an execution of at most ``max_steps`` events.

        The run ends early if the system quiesces (no task enabled and no
        injection pending) or ``stop_when(state, step)`` returns True.
        Injections scheduled at steps beyond the end of the run are
        silently dropped (the adversary chose not to act in time).
        """
        from repro.compiled.config import resolve_compiled

        if resolve_compiled(self.compiled):
            from repro.compiled.loop import compiled_run

            return compiled_run(
                automaton,
                self.policy,
                max_steps,
                injections=injections,
                stop_when=stop_when,
                start=start,
                observer=self.observer,
                metrics=self._metrics,
                profiler=self.profiler,
            )
        if self.profiler is not None:
            return self._run_profiled(
                automaton, max_steps, injections, stop_when, start
            )
        self.policy.reset()
        observer = self.observer
        metrics = self._metrics
        wall_start = time.perf_counter() if metrics is not None else 0.0
        cache_base = cache_stats_snapshot() if metrics is not None else {}
        pending: Dict[int, List[Action]] = {}
        for injection in injections:
            pending.setdefault(injection.step, []).append(injection.action)

        state = automaton.initial_state() if start is None else start
        states: List[State] = [state]
        actions: List[Action] = []
        step = 0
        reason = "max-steps"
        if observer is not None:
            observer.on_run_start(automaton, max_steps)
        while step < max_steps:
            if stop_when is not None and stop_when(state, step):
                reason = "stopped"
                break
            if observer is not None:
                observer.on_step_scheduled(step)
            # An injection fires at the first step >= its scheduled step
            # (several injections can share a step; the later ones spill
            # over into subsequent steps).
            injected = False
            due = min((s for s in pending if s <= step), default=None)
            if due is not None:
                action = pending[due].pop(0)
                if not pending[due]:
                    del pending[due]
                if not automaton.enabled(state, action):
                    raise ValueError(
                        f"injection {action} at step {step} is not enabled"
                    )
                injected = True
            else:
                chosen = self.policy.choose(automaton, state, step)
                if chosen is None:
                    if not pending:
                        reason = "quiescent"
                        break
                    # Nothing locally enabled: fast-forward to the next
                    # injection.
                    next_step = min(pending)
                    action = pending[next_step].pop(0)
                    if not pending[next_step]:
                        del pending[next_step]
                    if not automaton.enabled(state, action):
                        raise ValueError(
                            f"injection {action} (fast-forwarded from step "
                            f"{next_step}) is not enabled"
                        )
                    injected = True
                else:
                    action = chosen
            state = automaton.apply(state, action)
            states.append(state)
            actions.append(action)
            if observer is not None:
                observer.on_action(step, action, injected)
            step += 1
        if observer is not None:
            observer.on_run_end(step, reason)
        if metrics is not None:
            metrics.counter("scheduler.runs").inc()
            metrics.counter("scheduler.steps").inc(step)
            metrics.histogram("scheduler.run_wall_s").observe(
                time.perf_counter() - wall_start
            )
            _export_cache_metrics(metrics, cache_base)
        return Execution(states, actions)

    def _run_profiled(
        self,
        automaton: Automaton,
        max_steps: int,
        injections: Iterable[Injection] = (),
        stop_when: Optional[Callable[[State, int], bool]] = None,
        start: Optional[State] = None,
    ) -> Execution:
        """The phase-accounted twin of :meth:`run`.

        Step-for-step identical to the unprofiled loop — same policy
        calls, same injection resolution (including the fast-forward
        branch and its error messages), same stop/quiescence semantics —
        so the produced :class:`~repro.ioa.executions.Execution` is
        byte-identical to an unprofiled run.  The only additions are the
        phase books: each step is split into ``snapshot`` (warming the
        grouped enabled-set the policy consumes), ``policy``, ``apply``
        (or ``chan-tick`` when the applied action is the channels' delay
        ager), ``observe`` and ``injection``, timed with the profiler's
        injectable clock.  Wall times land only in the profile summary,
        never in the execution.
        """
        prof = self.profiler
        clock = prof.clock
        self.policy.reset()
        observer = self.observer
        metrics = self._metrics
        wall_start = time.perf_counter() if metrics is not None else 0.0
        cache_base = cache_stats_snapshot() if metrics is not None else {}
        pending: Dict[int, List[Action]] = {}
        for injection in injections:
            pending.setdefault(injection.step, []).append(injection.action)

        state = automaton.initial_state() if start is None else start
        states: List[State] = [state]
        actions: List[Action] = []
        step = 0
        reason = "max-steps"
        injected_count = 0
        prof.on_run_start()
        if observer is not None:
            observer.on_run_start(automaton, max_steps)
        while step < max_steps:
            if stop_when is not None and stop_when(state, step):
                reason = "stopped"
                break
            if observer is not None:
                t0 = clock()
                observer.on_step_scheduled(step)
                prof.add("observe", clock() - t0)
            injected = False
            due = min((s for s in pending if s <= step), default=None)
            if due is not None:
                t0 = clock()
                action = pending[due].pop(0)
                if not pending[due]:
                    del pending[due]
                if not automaton.enabled(state, action):
                    raise ValueError(
                        f"injection {action} at step {step} is not enabled"
                    )
                injected = True
                prof.add("injection", clock() - t0)
            else:
                # Warm the grouped enabled-set the policy is about to
                # consume.  ``enabled_by_task`` is pure, so the policy's
                # own call returns the same snapshot (memo hit) and the
                # chosen action is unchanged; the split just books the
                # enabled-set cost separately from the choice itself.
                t0 = clock()
                automaton.enabled_by_task(state)
                t1 = clock()
                prof.add("snapshot", t1 - t0)
                chosen = self.policy.choose(automaton, state, step)
                prof.add("policy", clock() - t1)
                if chosen is None:
                    if not pending:
                        reason = "quiescent"
                        break
                    t0 = clock()
                    next_step = min(pending)
                    action = pending[next_step].pop(0)
                    if not pending[next_step]:
                        del pending[next_step]
                    if not automaton.enabled(state, action):
                        raise ValueError(
                            f"injection {action} (fast-forwarded from step "
                            f"{next_step}) is not enabled"
                        )
                    injected = True
                    prof.add("injection", clock() - t0)
                else:
                    action = chosen
            if injected:
                injected_count += 1
            t0 = clock()
            state = automaton.apply(state, action)
            phase = "chan-tick" if action.name == CHAN_TICK else "apply"
            prof.add(phase, clock() - t0)
            states.append(state)
            actions.append(action)
            if observer is not None:
                t0 = clock()
                observer.on_action(step, action, injected)
                prof.add("observe", clock() - t0)
            step += 1
        if observer is not None:
            t0 = clock()
            observer.on_run_end(step, reason)
            prof.add("observe", clock() - t0)
        prof.on_run_end(step, injected_count)
        if metrics is not None:
            metrics.counter("scheduler.runs").inc()
            metrics.counter("scheduler.steps").inc(step)
            metrics.histogram("scheduler.run_wall_s").observe(
                time.perf_counter() - wall_start
            )
            _export_cache_metrics(metrics, cache_base)
        return Execution(states, actions)

    def run_to_quiescence(
        self,
        automaton: Automaton,
        max_steps: int,
        injections: Iterable[Injection] = (),
        start: Optional[State] = None,
    ) -> Execution:
        """Run until no task is enabled; raise if the bound is hit first."""
        execution = self.run(
            automaton, max_steps, injections=injections, start=start
        )
        if len(execution) >= max_steps:
            still = [
                t
                for t in automaton.tasks()
                if automaton.task_enabled(execution.final_state, t)
            ]
            if still:
                raise RuntimeError(
                    f"system did not quiesce within {max_steps} steps; "
                    f"enabled tasks: {still[:5]}"
                )
        return execution
