"""Composition of I/O automata (Section 2.3).

A collection of automata is composed by matching output actions of some
automata with same-named input actions of others; all the actions with the
same name are performed together.  The composition's state is the tuple of
component states; a step on action ``a`` advances exactly the components
that have ``a`` in their signature.

Compatibility requirements (Lynch [21, Chapter 8]):

* each action is an output of at most one component;
* internal actions of a component are not actions of any other component.

Because signatures here are predicate-based (and hence possibly infinite),
the constructor checks compatibility on enumerable parts of the signatures
and the remaining checks happen lazily: the first step performed on each
distinct action verifies that it has at most one output owner.

Hot-path design (the simulation engine's inner loop)
----------------------------------------------------
A naive composition step costs O(components) signature-membership tests
per dispatch question (``owner_of``, ``participants``, ``task_of``) and a
full ``enabled_locally`` re-enumeration per task per scheduler step.
Both are pure functions — dispatch of the action alone, enabledness of
the component's state piece alone — so the composition memoizes them:

* **dispatch maps**: per action, the owning component index and the
  participant index tuple are computed once by the predicate scan and
  remembered (the scan stays the fallback for the first sighting of each
  action, so infinite predicate signatures keep working);
* **per-component enabled cache**: per ``(component, component state)``,
  the component's enabled actions grouped by namespaced task.  Keying on
  the state piece *is* the invalidation rule: a fired action replaces the
  state pieces of exactly its participants, so every non-participant hits
  the cache with its unchanged piece — their enabled sets provably cannot
  have changed;
* **per-step snapshots**: :meth:`Composition.enabled_by_task` assembles
  the full task→enabled-actions map from the cached groups, so scheduler
  policies and the tagged-tree builder ask once per step instead of once
  per task.

Correctness rests on the module contract that states are immutable and
``enabled_locally`` is a pure function of the state
(:mod:`repro.ioa.automaton`); ``tests/properties`` cross-checks the cache
against brute-force re-enumeration on randomized compositions.  Caching
can be disabled per instance (``use_enabled_cache=False``), process-wide
(:func:`set_enabled_cache_default`), or via the environment variable
``REPRO_DISABLE_ENABLED_CACHE=1`` — the disabled path is the original
predicate scan, which CI uses as the semantics oracle.

Every memo probe tallies into the process-global cache telemetry
(``composition.dispatch`` / ``composition.task`` / ``composition.enabled``
in :mod:`repro.obs.prof`): deterministic hit/miss/evict counts the
profiler and the benchmark ``--profile`` flag report as hit rates.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton, State
from repro.ioa.signature import (
    ActionSet,
    PredicateActionSet,
    Signature,
    UnionActionSet,
)
from repro.obs.prof import cache_counter


class CompositionError(Exception):
    """Raised when automata cannot be composed, or a step is ambiguous."""


def _env_cache_default() -> bool:
    return os.environ.get("REPRO_DISABLE_ENABLED_CACHE", "").lower() not in (
        "1",
        "true",
        "yes",
    )


_cache_default = _env_cache_default()


def enabled_cache_default() -> bool:
    """The process-wide default for composition enabled/dispatch caching."""
    return _cache_default


def set_enabled_cache_default(enabled: bool) -> bool:
    """Set the process-wide caching default; returns the previous value.

    Affects compositions constructed afterwards (existing instances keep
    the mode they were built with).  The benchmark perf guard flips this
    to compare cached against brute-force series.
    """
    global _cache_default
    previous = _cache_default
    _cache_default = bool(enabled)
    return previous


class _CompositionInputs(ActionSet):
    """Inputs of a composition: inputs of some component, output of none."""

    def __init__(self, components: Sequence[Automaton]):
        self._components = components

    def __contains__(self, action: Action) -> bool:
        if any(action in c.signature.outputs for c in self._components):
            return False
        return any(action in c.signature.inputs for c in self._components)

    def __repr__(self) -> str:
        return f"CompositionInputs({[c.name for c in self._components]})"


class Composition(Automaton):
    """The composition of a collection of compatible I/O automata.

    Task names are namespaced as ``"<component name>:<task name>"`` so the
    scheduler can treat the composition's tasks uniformly.
    """

    TASK_SEPARATOR = ":"

    #: Clear the per-component enabled cache when it grows past this many
    #: distinct (component, state-piece) keys; bounds memory on runs whose
    #: reachable state space is enormous while keeping the common case
    #: (heavily repeated pieces) fully cached.
    ENABLED_CACHE_CAP = 1 << 16

    def __init__(
        self,
        components: Iterable[Automaton],
        name: str = "",
        instrument=None,
        use_enabled_cache: Optional[bool] = None,
    ):
        components = tuple(components)
        if not components:
            raise CompositionError("cannot compose zero automata")
        names = [c.name for c in components]
        if len(set(names)) != len(names):
            raise CompositionError(f"component names must be unique: {names}")
        super().__init__(name or "||".join(names))
        self.components: Tuple[Automaton, ...] = components
        self._index: Dict[str, int] = {c.name: k for k, c in enumerate(components)}
        self._check_enumerable_compatibility()
        self._signature = Signature(
            inputs=_CompositionInputs(components),
            outputs=UnionActionSet(c.signature.outputs for c in components),
            internals=UnionActionSet(c.signature.internals for c in components),
        )
        self._tasks: Tuple[str, ...] = tuple(
            self._qualify(c, task) for c in components for task in c.tasks()
        )
        # Hot-path memos (see the module docstring).  All three are pure
        # caches: dispatch of an action and enabledness of a state piece
        # never change, so no invalidation is needed.
        self._use_cache: bool = (
            _cache_default if use_enabled_cache is None else bool(use_enabled_cache)
        )
        #: action -> (owner index or None, participant index tuple)
        self._dispatch_memo: Dict[Action, Tuple[Optional[int], Tuple[int, ...]]] = {}
        #: action -> namespaced task name or None
        self._task_memo: Dict[Action, Optional[str]] = {}
        #: (component index, component state piece) ->
        #: {namespaced task: enabled actions tuple}
        self._enabled_memo: Dict[
            Tuple[int, State], Dict[str, Tuple[Action, ...]]
        ] = {}
        # Cache telemetry: process-global hit/miss/evict tallies shared by
        # every composition (repro.obs.prof).  Plain integer adds on the
        # memo probes; deterministic for a fixed run, and the substrate of
        # the profiler's cache block and the scheduler's per-run
        # ``cache.*`` metrics export.
        self._c_dispatch = cache_counter("composition.dispatch")
        self._c_task = cache_counter("composition.task")
        self._c_enabled = cache_counter("composition.enabled")
        # Optional observability: attach_metrics() makes every step count
        # itself; detached (the default) the hot path pays one None test.
        # ``instrument=`` is the unified convention (repro.obs.instrument);
        # only the metrics half applies here.
        self._metrics = None
        if instrument is not None:
            from repro.obs.instrument import coerce_instrument

            self._metrics = coerce_instrument(instrument).metrics

    def attach_metrics(self, registry) -> "Composition":
        """Record ``composition.steps`` / ``composition.participants``
        into ``registry`` on every :meth:`apply`; returns self."""
        self._metrics = registry
        return self

    def detach_metrics(self) -> "Composition":
        self._metrics = None
        return self

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _qualify(self, component: Automaton, task: str) -> str:
        return f"{component.name}{self.TASK_SEPARATOR}{task}"

    def split_task(self, task: str) -> Tuple[Automaton, str]:
        """Resolve a namespaced task name into (component, local task)."""
        comp_name, sep, local = task.partition(self.TASK_SEPARATOR)
        if not sep or comp_name not in self._index:
            raise KeyError(f"unknown composition task {task!r}")
        return self.components[self._index[comp_name]], local

    def _check_enumerable_compatibility(self) -> None:
        """Best-effort static compatibility checks on finite signatures."""
        for k, c in enumerate(self.components):
            outs = c.signature.outputs
            if not outs.is_finite():
                continue
            for action in outs.enumerate():
                owners = [
                    d.name
                    for d in self.components
                    if action in d.signature.outputs
                ]
                if len(owners) > 1:
                    raise CompositionError(
                        f"action {action} is an output of several "
                        f"components: {owners}"
                    )
        for c in self.components:
            ints = c.signature.internals
            if not ints.is_finite():
                continue
            for action in ints.enumerate():
                for d in self.components:
                    if d is not c and action in d.signature:
                        raise CompositionError(
                            f"internal action {action} of {c.name} is also "
                            f"an action of {d.name}"
                        )

    # ------------------------------------------------------------------
    # Automaton interface
    # ------------------------------------------------------------------

    @property
    def signature(self) -> Signature:
        return self._signature

    def initial_state(self) -> State:
        return tuple(c.initial_state() for c in self.components)

    def component_state(self, state: State, component: Automaton) -> State:
        """The given component's piece of a composition state."""
        return state[self._index[component.name]]

    def component_index(self, component: Automaton) -> int:
        """The component's fixed position in composition states (hot
        readers index the state tuple directly with it)."""
        return self._index[component.name]

    def _dispatch(self, action: Action) -> Tuple[Optional[int], Tuple[int, ...]]:
        """``(owner index or None, participant indices)`` for ``action``.

        The first sighting of each action runs the predicate scan (and
        performs the lazy one-output-owner compatibility check, raising
        :class:`CompositionError` on ambiguity); subsequent sightings are
        one dictionary lookup.  Only successful dispatches are memoized,
        so an ambiguous action raises on every use.
        """
        entry = self._dispatch_memo.get(action)
        if entry is not None:
            self._c_dispatch.hits += 1
            return entry
        self._c_dispatch.misses += 1
        owners = [
            k
            for k, c in enumerate(self.components)
            if c.signature.is_locally_controlled(action)
        ]
        if len(owners) > 1:
            raise CompositionError(
                f"action {action} is locally controlled by several "
                f"components: {[self.components[k].name for k in owners]}"
            )
        entry = (
            owners[0] if owners else None,
            tuple(
                k
                for k, c in enumerate(self.components)
                if action in c.signature
            ),
        )
        if self._use_cache:
            self._dispatch_memo[action] = entry
        return entry

    def participants(self, action: Action) -> List[int]:
        """Indices of components that have ``action`` in their signature."""
        return list(self._dispatch(action)[1])

    def owner_of(self, action: Action) -> Optional[Automaton]:
        """The unique component having ``action`` as a locally controlled
        action, or ``None`` for pure input actions."""
        owner = self._dispatch(action)[0]
        return None if owner is None else self.components[owner]

    def apply(self, state: State, action: Action) -> State:
        # _dispatch raises on ambiguity (the lazy compatibility check).
        _owner, participants = self._dispatch(action)
        if self._metrics is not None:
            return self._apply_metered(state, action, participants)
        next_state = list(state)
        for k in participants:
            next_state[k] = self.components[k].apply(state[k], action)
        return tuple(next_state)

    def _apply_metered(
        self, state: State, action: Action, participants: Tuple[int, ...]
    ) -> State:
        """apply() with per-step metrics; only runs when attached."""
        next_state = list(state)
        for k in participants:
            next_state[k] = self.components[k].apply(state[k], action)
        self._metrics.counter("composition.steps").inc()
        self._metrics.histogram("composition.participants").observe(
            len(participants)
        )
        return tuple(next_state)

    def enabled(self, state: State, action: Action) -> bool:
        if self.signature.is_input(action):
            return True
        owner = self._dispatch(action)[0]
        if owner is None:
            return False
        return self.components[owner].enabled(state[owner], action)

    def enabled_locally(self, state: State) -> Iterable[Action]:
        for c, s in zip(self.components, state):
            for action in c.enabled_locally(s):
                yield action

    # ------------------------------------------------------------------
    # Tasks
    # ------------------------------------------------------------------

    def tasks(self) -> Sequence[str]:
        return self._tasks

    def task_of(self, action: Action) -> Optional[str]:
        if action in self._task_memo:
            self._c_task.hits += 1
            return self._task_memo[action]
        self._c_task.misses += 1
        owner = self.owner_of(action)
        if owner is None:
            qualified = None
        else:
            local = owner.task_of(action)
            qualified = None if local is None else self._qualify(owner, local)
        if self._use_cache:
            self._task_memo[action] = qualified
        return qualified

    def _component_enabled(
        self, index: int, piece: State
    ) -> Dict[str, Tuple[Action, ...]]:
        """Component ``index``'s enabled actions in its state ``piece``,
        grouped by namespaced task — memoized on ``(index, piece)``.

        A step replaces the pieces of exactly the fired action's
        participants, so every other component re-presents its old piece
        and hits the cache: this key *is* the "invalidate only the
        participants" rule.
        """
        key = (index, piece)
        grouped = self._enabled_memo.get(key)
        if grouped is not None:
            self._c_enabled.hits += 1
            return grouped
        self._c_enabled.misses += 1
        component = self.components[index]
        prefix = component.name + self.TASK_SEPARATOR
        grouped = {
            prefix + local: actions
            for local, actions in component.enabled_by_task(piece).items()
        }
        if self._use_cache:
            if len(self._enabled_memo) >= self.ENABLED_CACHE_CAP:
                self._c_enabled.evictions += len(self._enabled_memo)
                self._enabled_memo.clear()
            self._enabled_memo[key] = grouped
        return grouped

    def enabled_in_task(self, state: State, task: str) -> Tuple[Action, ...]:
        component, _local = self.split_task(task)
        index = self._index[component.name]
        return self._component_enabled(index, state[index]).get(task, ())

    def enabled_by_task(self, state: State) -> Dict[str, Tuple[Action, ...]]:
        """One snapshot of every enabled task — the per-step query the
        scheduler policies and the tagged-tree builder consume (see the
        module docstring)."""
        snapshot: Dict[str, Tuple[Action, ...]] = {}
        for index, piece in enumerate(state):
            snapshot.update(self._component_enabled(index, piece))
        return snapshot

    # ------------------------------------------------------------------
    # Projection (Theorem 8.1 in Lynch [21])
    # ------------------------------------------------------------------

    def project_execution(self, execution, component: Automaton):
        """The projection ``alpha | A_i`` of an execution on one component.

        Deletes each (action, state) pair whose action is not an action of
        the component, and replaces each remaining state by the component's
        piece of it (Section 2.3).
        """
        from repro.ioa.executions import Execution

        idx = self._index[component.name]
        states = [execution.states[0][idx]]
        actions = []
        for k, action in enumerate(execution.actions):
            if action in component.signature:
                actions.append(action)
                states.append(execution.states[k + 1][idx])
        return Execution(states, actions)


def compose(*components: Automaton, name: str = "") -> Composition:
    """Convenience constructor: ``compose(a, b, c)``."""
    return Composition(components, name=name)
