"""Composition of I/O automata (Section 2.3).

A collection of automata is composed by matching output actions of some
automata with same-named input actions of others; all the actions with the
same name are performed together.  The composition's state is the tuple of
component states; a step on action ``a`` advances exactly the components
that have ``a`` in their signature.

Compatibility requirements (Lynch [21, Chapter 8]):

* each action is an output of at most one component;
* internal actions of a component are not actions of any other component.

Because signatures here are predicate-based (and hence possibly infinite),
the constructor checks compatibility on enumerable parts of the signatures
and the remaining checks happen lazily: every step performed through the
composition verifies that its action has at most one output owner.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton, State
from repro.ioa.signature import (
    ActionSet,
    PredicateActionSet,
    Signature,
    UnionActionSet,
)


class CompositionError(Exception):
    """Raised when automata cannot be composed, or a step is ambiguous."""


class _CompositionInputs(ActionSet):
    """Inputs of a composition: inputs of some component, output of none."""

    def __init__(self, components: Sequence[Automaton]):
        self._components = components

    def __contains__(self, action: Action) -> bool:
        if any(action in c.signature.outputs for c in self._components):
            return False
        return any(action in c.signature.inputs for c in self._components)

    def __repr__(self) -> str:
        return f"CompositionInputs({[c.name for c in self._components]})"


class Composition(Automaton):
    """The composition of a collection of compatible I/O automata.

    Task names are namespaced as ``"<component name>:<task name>"`` so the
    scheduler can treat the composition's tasks uniformly.
    """

    TASK_SEPARATOR = ":"

    def __init__(
        self,
        components: Iterable[Automaton],
        name: str = "",
        instrument=None,
    ):
        components = tuple(components)
        if not components:
            raise CompositionError("cannot compose zero automata")
        names = [c.name for c in components]
        if len(set(names)) != len(names):
            raise CompositionError(f"component names must be unique: {names}")
        super().__init__(name or "||".join(names))
        self.components: Tuple[Automaton, ...] = components
        self._index: Dict[str, int] = {c.name: k for k, c in enumerate(components)}
        self._check_enumerable_compatibility()
        self._signature = Signature(
            inputs=_CompositionInputs(components),
            outputs=UnionActionSet(c.signature.outputs for c in components),
            internals=UnionActionSet(c.signature.internals for c in components),
        )
        self._tasks: Tuple[str, ...] = tuple(
            self._qualify(c, task) for c in components for task in c.tasks()
        )
        # Optional observability: attach_metrics() makes every step count
        # itself; detached (the default) the hot path pays one None test.
        # ``instrument=`` is the unified convention (repro.obs.instrument);
        # only the metrics half applies here.
        self._metrics = None
        if instrument is not None:
            from repro.obs.instrument import coerce_instrument

            self._metrics = coerce_instrument(instrument).metrics

    def attach_metrics(self, registry) -> "Composition":
        """Record ``composition.steps`` / ``composition.participants``
        into ``registry`` on every :meth:`apply`; returns self."""
        self._metrics = registry
        return self

    def detach_metrics(self) -> "Composition":
        self._metrics = None
        return self

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _qualify(self, component: Automaton, task: str) -> str:
        return f"{component.name}{self.TASK_SEPARATOR}{task}"

    def split_task(self, task: str) -> Tuple[Automaton, str]:
        """Resolve a namespaced task name into (component, local task)."""
        comp_name, sep, local = task.partition(self.TASK_SEPARATOR)
        if not sep or comp_name not in self._index:
            raise KeyError(f"unknown composition task {task!r}")
        return self.components[self._index[comp_name]], local

    def _check_enumerable_compatibility(self) -> None:
        """Best-effort static compatibility checks on finite signatures."""
        for k, c in enumerate(self.components):
            outs = c.signature.outputs
            if not outs.is_finite():
                continue
            for action in outs.enumerate():
                owners = [
                    d.name
                    for d in self.components
                    if action in d.signature.outputs
                ]
                if len(owners) > 1:
                    raise CompositionError(
                        f"action {action} is an output of several "
                        f"components: {owners}"
                    )
        for c in self.components:
            ints = c.signature.internals
            if not ints.is_finite():
                continue
            for action in ints.enumerate():
                for d in self.components:
                    if d is not c and action in d.signature:
                        raise CompositionError(
                            f"internal action {action} of {c.name} is also "
                            f"an action of {d.name}"
                        )

    # ------------------------------------------------------------------
    # Automaton interface
    # ------------------------------------------------------------------

    @property
    def signature(self) -> Signature:
        return self._signature

    def initial_state(self) -> State:
        return tuple(c.initial_state() for c in self.components)

    def component_state(self, state: State, component: Automaton) -> State:
        """The given component's piece of a composition state."""
        return state[self._index[component.name]]

    def participants(self, action: Action) -> List[int]:
        """Indices of components that have ``action`` in their signature."""
        return [
            k
            for k, c in enumerate(self.components)
            if action in c.signature
        ]

    def owner_of(self, action: Action) -> Optional[Automaton]:
        """The unique component having ``action`` as a locally controlled
        action, or ``None`` for pure input actions."""
        owners = [
            c
            for c in self.components
            if c.signature.is_locally_controlled(action)
        ]
        if len(owners) > 1:
            raise CompositionError(
                f"action {action} is locally controlled by several "
                f"components: {[c.name for c in owners]}"
            )
        return owners[0] if owners else None

    def apply(self, state: State, action: Action) -> State:
        self.owner_of(action)  # raises on ambiguity (lazy compatibility)
        if self._metrics is not None:
            return self._apply_metered(state, action)
        return tuple(
            c.apply(s, action) if action in c.signature else s
            for c, s in zip(self.components, state)
        )

    def _apply_metered(self, state: State, action: Action) -> State:
        """apply() with per-step metrics; only runs when attached."""
        participants = 0
        next_state: List[State] = []
        for c, s in zip(self.components, state):
            if action in c.signature:
                participants += 1
                next_state.append(c.apply(s, action))
            else:
                next_state.append(s)
        self._metrics.counter("composition.steps").inc()
        self._metrics.histogram("composition.participants").observe(
            participants
        )
        return tuple(next_state)

    def enabled(self, state: State, action: Action) -> bool:
        if self.signature.is_input(action):
            return True
        owner = self.owner_of(action)
        if owner is None:
            return False
        return owner.enabled(
            self.component_state(state, owner), action
        )

    def enabled_locally(self, state: State) -> Iterable[Action]:
        for c, s in zip(self.components, state):
            for action in c.enabled_locally(s):
                yield action

    # ------------------------------------------------------------------
    # Tasks
    # ------------------------------------------------------------------

    def tasks(self) -> Sequence[str]:
        return self._tasks

    def task_of(self, action: Action) -> Optional[str]:
        owner = self.owner_of(action)
        if owner is None:
            return None
        local = owner.task_of(action)
        if local is None:
            return None
        return self._qualify(owner, local)

    def enabled_in_task(self, state: State, task: str) -> Tuple[Action, ...]:
        component, local = self.split_task(task)
        return component.enabled_in_task(
            self.component_state(state, component), local
        )

    # ------------------------------------------------------------------
    # Projection (Theorem 8.1 in Lynch [21])
    # ------------------------------------------------------------------

    def project_execution(self, execution, component: Automaton):
        """The projection ``alpha | A_i`` of an execution on one component.

        Deletes each (action, state) pair whose action is not an action of
        the component, and replaces each remaining state by the component's
        piece of it (Section 2.3).
        """
        from repro.ioa.executions import Execution

        idx = self._index[component.name]
        states = [execution.states[0][idx]]
        actions = []
        for k, action in enumerate(execution.actions):
            if action in component.signature:
                actions.append(action)
                states.append(execution.states[k + 1][idx])
        return Execution(states, actions)


def compose(*components: Automaton, name: str = "") -> Composition:
    """Convenience constructor: ``compose(a, b, c)``."""
    return Composition(components, name=name)
