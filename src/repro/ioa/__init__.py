"""I/O Automata substrate (paper Section 2).

This package implements the I/O automata framework of Lynch [21] as used by
the paper: automata with signatures, tasks and transitions; executions,
schedules and traces; composition and hiding; task-based fairness; and a
simulation engine that produces fair executions of (compositions of)
automata.
"""

from repro.ioa.actions import Action, BOTTOM
from repro.ioa.signature import (
    ActionSet,
    EmptyActionSet,
    FiniteActionSet,
    PredicateActionSet,
    Signature,
    UnionActionSet,
)
from repro.ioa.automaton import Automaton, FunctionalAutomaton
from repro.ioa.executions import Execution, Schedule, Trace, project
from repro.ioa.composition import Composition, CompositionError, compose
from repro.ioa.hiding import Hidden, hide
from repro.ioa.determinism import (
    is_deterministic,
    is_task_deterministic,
    violations_of_task_determinism,
)
from repro.ioa.fairness import (
    enabled_tasks,
    is_fair_finite_execution,
    task_event_counts,
)
from repro.ioa.scheduler import (
    AdversarialPolicy,
    Injection,
    RandomPolicy,
    RoundRobinPolicy,
    Scheduler,
    SchedulerPolicy,
)

__all__ = [
    "Action",
    "BOTTOM",
    "ActionSet",
    "EmptyActionSet",
    "FiniteActionSet",
    "PredicateActionSet",
    "Signature",
    "UnionActionSet",
    "Automaton",
    "FunctionalAutomaton",
    "Execution",
    "Schedule",
    "Trace",
    "project",
    "Composition",
    "CompositionError",
    "compose",
    "Hidden",
    "hide",
    "is_deterministic",
    "is_task_deterministic",
    "violations_of_task_determinism",
    "enabled_tasks",
    "is_fair_finite_execution",
    "task_event_counts",
    "AdversarialPolicy",
    "Injection",
    "RandomPolicy",
    "RoundRobinPolicy",
    "Scheduler",
    "SchedulerPolicy",
]
