"""Task-based fairness (Section 2.4).

An execution fragment ``alpha`` is fair iff for every task C:

1. if ``alpha`` is finite, no action of C is enabled in its final state;
2. if ``alpha`` is infinite, it contains infinitely many events from C or
   infinitely many states where C is not enabled.

Simulated executions are finite, so two checks are provided:

* :func:`is_fair_finite_execution` — condition (1), exact: the run stopped
  only because nothing (with a fairness obligation) was left to do;
* :func:`fairness_debt` — for truncated runs of non-quiescent systems, the
  set of tasks that are enabled at the end (the "debt" an infinite fair
  extension would have to pay).  Schedulers in :mod:`repro.ioa.scheduler`
  guarantee every task is offered a turn infinitely often, so truncations
  of their runs are prefixes of fair executions by construction.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence

from repro.ioa.automaton import Automaton, State
from repro.ioa.executions import Execution


def enabled_tasks(automaton: Automaton, state: State) -> List[str]:
    """The tasks of ``automaton`` with some enabled action in ``state``."""
    return [
        task for task in automaton.tasks() if automaton.task_enabled(state, task)
    ]


def fairness_debt(automaton: Automaton, execution: Execution) -> List[str]:
    """Tasks still enabled in the final state of a finite execution."""
    return enabled_tasks(automaton, execution.final_state)


def is_fair_finite_execution(
    automaton: Automaton, execution: Execution
) -> bool:
    """Whether a finite execution is fair: no task enabled at the end."""
    return not fairness_debt(automaton, execution)


def task_event_counts(
    automaton: Automaton, execution: Execution
) -> Dict[str, int]:
    """How many events of each task occur in the execution.

    Input events (and free actions with no task) are tallied under the
    pseudo-task ``"<input>"``.
    """
    counts: Counter = Counter()
    for action in execution.actions:
        task = automaton.task_of(action)
        counts[task if task is not None else "<input>"] += 1
    return dict(counts)


def rounds_offered(
    automaton: Automaton, execution: Execution, schedule_order: Sequence[str]
) -> int:
    """How many full round-robin passes over ``schedule_order`` fit into the
    execution; a coarse fairness metric for truncated runs."""
    if not schedule_order:
        return 0
    return len(execution.actions) // len(schedule_order)
