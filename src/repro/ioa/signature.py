"""Signatures: classification of actions as input, output or internal.

The action universe of a distributed system is infinite (there is a ``send``
action for every message in the alphabet M), so action sets are represented
by membership predicates rather than enumerations.  Finite sets additionally
support iteration, which several checkers exploit.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, FrozenSet, Iterable, Iterator, Optional

from repro.ioa.actions import Action


class ActionSet(ABC):
    """An (extensionally possibly infinite) set of actions."""

    @abstractmethod
    def __contains__(self, action: Action) -> bool:
        """Membership test."""

    def is_finite(self) -> bool:
        """Whether this set supports enumeration via :meth:`enumerate`."""
        return False

    def enumerate(self) -> Iterator[Action]:
        """Iterate over members; only available when :meth:`is_finite`."""
        raise TypeError(f"{type(self).__name__} is not enumerable")

    def union(self, other: "ActionSet") -> "ActionSet":
        """The union of this set with another."""
        return UnionActionSet((self, other))

    def __or__(self, other: "ActionSet") -> "ActionSet":
        return self.union(other)


class EmptyActionSet(ActionSet):
    """The empty set of actions."""

    def __contains__(self, action: Action) -> bool:
        return False

    def is_finite(self) -> bool:
        return True

    def enumerate(self) -> Iterator[Action]:
        return iter(())

    def __repr__(self) -> str:
        return "EmptyActionSet()"


class FiniteActionSet(ActionSet):
    """An explicitly enumerated, finite set of actions."""

    def __init__(self, actions: Iterable[Action]):
        self._actions: FrozenSet[Action] = frozenset(actions)

    def __contains__(self, action: Action) -> bool:
        return action in self._actions

    def is_finite(self) -> bool:
        return True

    def enumerate(self) -> Iterator[Action]:
        return iter(sorted(self._actions))

    def __len__(self) -> int:
        return len(self._actions)

    def __repr__(self) -> str:
        return f"FiniteActionSet({sorted(self._actions)!r})"


class PredicateActionSet(ActionSet):
    """An action set defined by a membership predicate.

    Used for infinite families such as ``{send(m, j)_i | m in M}``.

    Parameters
    ----------
    predicate:
        Membership test.
    description:
        Human-readable description for error messages and ``repr``.
    """

    def __init__(self, predicate: Callable[[Action], bool], description: str = ""):
        self._predicate = predicate
        self._description = description

    def __contains__(self, action: Action) -> bool:
        return self._predicate(action)

    def __repr__(self) -> str:
        return f"PredicateActionSet({self._description!r})"


class UnionActionSet(ActionSet):
    """The union of several action sets."""

    def __init__(self, parts: Iterable[ActionSet]):
        self._parts = tuple(parts)

    def __contains__(self, action: Action) -> bool:
        return any(action in part for part in self._parts)

    def is_finite(self) -> bool:
        return all(part.is_finite() for part in self._parts)

    def enumerate(self) -> Iterator[Action]:
        seen = set()
        for part in self._parts:
            for action in part.enumerate():
                if action not in seen:
                    seen.add(action)
                    yield action

    @property
    def parts(self) -> tuple:
        return self._parts

    def __repr__(self) -> str:
        return f"UnionActionSet({list(self._parts)!r})"


class Signature:
    """The signature of an I/O automaton (Section 2.1).

    Partitions the automaton's actions into input, output and internal sets.
    Input and output actions are *external*; output and internal actions are
    *locally controlled*.
    """

    def __init__(
        self,
        inputs: Optional[ActionSet] = None,
        outputs: Optional[ActionSet] = None,
        internals: Optional[ActionSet] = None,
    ):
        self.inputs: ActionSet = inputs if inputs is not None else EmptyActionSet()
        self.outputs: ActionSet = outputs if outputs is not None else EmptyActionSet()
        self.internals: ActionSet = (
            internals if internals is not None else EmptyActionSet()
        )

    def is_input(self, action: Action) -> bool:
        return action in self.inputs

    def is_output(self, action: Action) -> bool:
        return action in self.outputs

    def is_internal(self, action: Action) -> bool:
        return action in self.internals

    def is_external(self, action: Action) -> bool:
        return self.is_input(action) or self.is_output(action)

    def is_locally_controlled(self, action: Action) -> bool:
        return self.is_output(action) or self.is_internal(action)

    def __contains__(self, action: Action) -> bool:
        return (
            self.is_input(action)
            or self.is_output(action)
            or self.is_internal(action)
        )

    def classify(self, action: Action) -> Optional[str]:
        """Return ``"input"``, ``"output"``, ``"internal"``, or ``None``."""
        if self.is_input(action):
            return "input"
        if self.is_output(action):
            return "output"
        if self.is_internal(action):
            return "internal"
        return None

    def __repr__(self) -> str:
        return (
            f"Signature(inputs={self.inputs!r}, outputs={self.outputs!r}, "
            f"internals={self.internals!r})"
        )
