"""Determinism and task-determinism checks (Section 2.5).

The paper's definitions:

* an action ``a`` is *deterministic* iff each state has at most one
  ``(s, a, s')`` transition — automatic here, because transitions are the
  pure function :meth:`Automaton.apply`;
* an automaton is *task deterministic* iff every task has at most one
  enabled action in every state (and all actions are deterministic);
* an automaton is *deterministic* iff it is task deterministic, has exactly
  one task, and a unique start state.

Exhaustive checking over infinite state spaces is impossible, so the
checkers explore the reachable state space breadth-first up to a bound and
report violations found there.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton, State


@dataclass
class Reachability:
    """The result of a bounded reachable-state exploration.

    ``truncated`` reports whether the ``max_states`` bound cut the
    exploration short: when it is ``False`` the ``states`` list is the
    *complete* reachable fragment under the given inputs, and checkers
    built on it (task determinism, the contract linter) may state their
    verdicts without a "within the explored fragment" caveat.
    """

    states: List[State]
    truncated: bool
    transitions: int = 0

    def __iter__(self):
        return iter(self.states)

    def __len__(self) -> int:
        return len(self.states)


def explore_reachable(
    automaton: Automaton,
    max_states: int = 10_000,
    extra_inputs: Iterable[Action] = (),
) -> Reachability:
    """Breadth-first enumeration of reachable states, with a truncation
    report.

    Follows all enabled locally controlled actions and, optionally, a
    finite set of ``extra_inputs`` to exercise input transitions too.
    Stops after ``max_states`` states; :attr:`Reachability.truncated`
    records whether the bound (rather than exhaustion) ended the walk.
    """
    extra = tuple(extra_inputs)
    start = automaton.initial_state()
    seen: Set[State] = {start}
    order: List[State] = [start]
    frontier = deque([start])
    transitions = 0
    while frontier and len(seen) < max_states:
        state = frontier.popleft()
        moves = list(automaton.enabled_locally(state))
        moves.extend(a for a in extra if automaton.enabled(state, a))
        for action in moves:
            nxt = automaton.apply(state, action)
            transitions += 1
            if nxt not in seen:
                seen.add(nxt)
                order.append(nxt)
                frontier.append(nxt)
                if len(seen) >= max_states:
                    break
    return Reachability(
        states=order, truncated=bool(frontier), transitions=transitions
    )


def reachable_states(
    automaton: Automaton,
    max_states: int = 10_000,
    extra_inputs: Iterable[Action] = (),
) -> List[State]:
    """Breadth-first enumeration of reachable states.

    Follows all enabled locally controlled actions and, optionally, a
    finite set of ``extra_inputs`` to exercise input transitions too.
    Stops after ``max_states`` states.  :func:`explore_reachable` returns
    the same list plus a truncation report.
    """
    return explore_reachable(automaton, max_states, extra_inputs).states


def violations_of_task_determinism(
    automaton: Automaton,
    max_states: int = 10_000,
    extra_inputs: Iterable[Action] = (),
) -> List[Tuple[State, str, Tuple[Action, ...]]]:
    """States where some task has more than one enabled action.

    Returns a list of ``(state, task, enabled actions)`` triples; an empty
    list means no violation was found in the explored fragment.
    """
    violations = []
    for state in reachable_states(automaton, max_states, extra_inputs):
        for task in automaton.tasks():
            enabled = automaton.enabled_in_task(state, task)
            if len(enabled) > 1:
                violations.append((state, task, enabled))
    return violations


def is_task_deterministic(
    automaton: Automaton,
    max_states: int = 10_000,
    extra_inputs: Iterable[Action] = (),
) -> bool:
    """Whether no task-determinism violation exists in the explored space."""
    return not violations_of_task_determinism(
        automaton, max_states, extra_inputs
    )


def is_deterministic(
    automaton: Automaton,
    max_states: int = 10_000,
    extra_inputs: Iterable[Action] = (),
) -> bool:
    """The paper's 'deterministic': task deterministic with exactly one task.

    (The unique-start-state requirement is satisfied by construction:
    :meth:`Automaton.initial_state` returns a single state.)
    """
    if len(automaton.tasks()) != 1:
        return False
    return is_task_deterministic(automaton, max_states, extra_inputs)
