"""Actions: the named events through which I/O automata interact (Section 2.1).

An action has a *name*, an optional *location* (the paper's ``loc`` mapping,
Section 3.1: ``loc(a) in Pi or bottom``), and a *payload* tuple carrying the
action's parameters (for example the message and destination of a ``send``).

Actions are immutable and hashable so they can be members of sets, dictionary
keys, and elements of schedules and traces.  Whether a given action is an
input, output or internal action is *not* a property of the action itself:
the same action is typically an output of one automaton and an input of
another (that is how composition synchronizes them, Section 2.3).  The
classification lives in each automaton's :class:`~repro.ioa.signature.Signature`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Optional, Tuple


@dataclass(frozen=True, order=True)
class Action:
    """A named event, optionally located at a process location.

    Parameters
    ----------
    name:
        The action's base name, e.g. ``"send"``, ``"crash"``, ``"fd-omega"``.
    location:
        The location (element of Pi) the action occurs at, or ``None`` for
        the paper's bottom placeholder (an action not located anywhere).
    payload:
        A tuple of hashable parameters, e.g. ``(message, destination)``.

    Examples
    --------
    >>> Action("crash", 2)
    Action(name='crash', location=2, payload=())
    >>> a = Action("send", 0, ("hello", 1))
    >>> a.payload
    ('hello', 1)
    """

    name: str
    location: Optional[int] = None
    payload: Tuple[Hashable, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.payload, tuple):
            raise TypeError(
                f"payload must be a tuple, got {type(self.payload).__name__}"
            )

    def with_name(self, name: str) -> "Action":
        """Return a copy of this action with a different name.

        Renamings (Section 5.3) map actions to same-located, same-payload
        actions with fresh names; this helper implements exactly that step.
        """
        return Action(name, self.location, self.payload)

    def with_location(self, location: Optional[int]) -> "Action":
        """Return a copy of this action at a different location."""
        return Action(self.name, location, self.payload)

    def __str__(self) -> str:
        args = ",".join(repr(p) for p in self.payload)
        suffix = f"_{self.location}" if self.location is not None else ""
        return f"{self.name}({args}){suffix}"


#: The paper's placeholder element for "no action" (written as an inverted T).
#: Used as the action tag of tree edges where no action is enabled
#: (Section 8.2) and as the result of indexing a sequence past its end.
BOTTOM: Any = None


def loc(action: Optional[Action]) -> Optional[int]:
    """The paper's ``loc`` mapping: location of an action, bottom for bottom.

    ``loc(BOTTOM)`` is defined to be ``BOTTOM`` (Section 3.1).
    """
    if action is None:
        return None
    return action.location
