"""Hiding: reclassifying output actions as internal (Section 2.3).

A hidden action no longer appears in the traces of the automaton, but it
still occurs in schedules and still synchronizes nothing (it is no longer
external, so composition with other automata cannot match it).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton, State
from repro.ioa.signature import ActionSet, PredicateActionSet, Signature


class _Difference(ActionSet):
    """Set difference of two action sets."""

    def __init__(self, base: ActionSet, removed: ActionSet):
        self._base = base
        self._removed = removed

    def __contains__(self, action: Action) -> bool:
        return action in self._base and action not in self._removed

    def __repr__(self) -> str:
        return f"Difference({self._base!r} - {self._removed!r})"


class _Intersection(ActionSet):
    """Intersection of two action sets."""

    def __init__(self, left: ActionSet, right: ActionSet):
        self._left = left
        self._right = right

    def __contains__(self, action: Action) -> bool:
        return action in self._left and action in self._right

    def __repr__(self) -> str:
        return f"Intersection({self._left!r} & {self._right!r})"


class Hidden(Automaton):
    """``automaton`` with the outputs in ``hidden`` reclassified as internal."""

    def __init__(self, automaton: Automaton, hidden: ActionSet):
        super().__init__(f"hide({automaton.name})")
        self.base = automaton
        self._hidden = hidden
        base_sig = automaton.signature
        newly_internal: ActionSet = _Intersection(base_sig.outputs, hidden)
        if base_sig.outputs.is_finite():
            # Materialize so composition's compatibility checks can see
            # the hidden actions (hiding then composing with an automaton
            # that still inputs the hidden action must be rejected).
            from repro.ioa.signature import FiniteActionSet

            newly_internal = FiniteActionSet(
                a for a in base_sig.outputs.enumerate() if a in hidden
            )
        self._signature = Signature(
            inputs=base_sig.inputs,
            outputs=_Difference(base_sig.outputs, hidden),
            internals=base_sig.internals.union(newly_internal),
        )

    @property
    def signature(self) -> Signature:
        return self._signature

    def initial_state(self) -> State:
        return self.base.initial_state()

    def apply(self, state: State, action: Action) -> State:
        return self.base.apply(state, action)

    def enabled(self, state: State, action: Action) -> bool:
        return self.base.enabled(state, action)

    def enabled_locally(self, state: State) -> Iterable[Action]:
        return self.base.enabled_locally(state)

    def tasks(self) -> Sequence[str]:
        return self.base.tasks()

    def task_of(self, action: Action) -> Optional[str]:
        return self.base.task_of(action)

    def enabled_in_task(self, state: State, task: str) -> Tuple[Action, ...]:
        return self.base.enabled_in_task(state, task)


def hide(automaton: Automaton, hidden) -> Hidden:
    """Hide ``hidden`` (an ActionSet, iterable of actions, or predicate)."""
    if isinstance(hidden, ActionSet):
        action_set = hidden
    elif callable(hidden):
        action_set = PredicateActionSet(hidden, "hidden-by-predicate")
    else:
        members = frozenset(hidden)
        action_set = PredicateActionSet(
            lambda a: a in members, f"hidden {len(members)} actions"
        )
    return Hidden(automaton, action_set)
