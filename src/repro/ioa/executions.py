"""Executions, schedules and traces (Section 2.2).

An *execution fragment* of an automaton is an alternating sequence
``s0, a1, s1, a2, ...`` of states and actions where each action is enabled
in the preceding state.  Its *schedule* is the subsequence of events (all
actions, internal and external); its *trace* is the subsequence of external
actions only.

The paper indexes sequences from 1 and defines ``t[x] = bottom`` when the
sequence has fewer than ``x`` events; :meth:`ActionSequence.at` implements
exactly that convention.
"""

from __future__ import annotations

from typing import (
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.ioa.actions import Action, BOTTOM
from repro.ioa.automaton import Automaton, State
from repro.ioa.signature import ActionSet

Selector = Union[ActionSet, Callable[[Action], bool], Iterable[Action]]


def _as_predicate(selector: Selector) -> Callable[[Action], bool]:
    """Normalize a projection selector into a membership predicate."""
    if isinstance(selector, ActionSet):
        return lambda a: a in selector
    if callable(selector):
        return selector
    members = frozenset(selector)
    return lambda a: a in members


class ActionSequence(Sequence[Action]):
    """A finite sequence of actions with the paper's indexing convention."""

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[Action] = ()):
        self._events: Tuple[Action, ...] = tuple(events)

    # -- Sequence protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return type(self)(self._events[index])
        return self._events[index]

    def __iter__(self) -> Iterator[Action]:
        return iter(self._events)

    def __eq__(self, other) -> bool:
        if isinstance(other, ActionSequence):
            return self._events == other._events
        if isinstance(other, (tuple, list)):
            return self._events == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._events))

    # -- Paper conventions -------------------------------------------------

    def at(self, x: int):
        """The paper's ``t[x]``: 1-based indexing, ``BOTTOM`` past the end."""
        if x < 1 or x > len(self._events):
            return BOTTOM
        return self._events[x - 1]

    @property
    def events(self) -> Tuple[Action, ...]:
        return self._events

    # -- Operations ----------------------------------------------------------

    def project(self, selector: Selector) -> "ActionSequence":
        """The projection ``t|B``: the subsequence of events from ``B``."""
        pred = _as_predicate(selector)
        return type(self)(a for a in self._events if pred(a))

    def concat(self, other: Iterable[Action]) -> "ActionSequence":
        """Concatenation ``t1 . t2`` (this sequence must be finite; it is)."""
        return type(self)(self._events + tuple(other))

    def is_prefix_of(self, other: "ActionSequence") -> bool:
        """Whether this sequence is a prefix of ``other``."""
        return self._events == other.events[: len(self._events)]

    def is_subsequence_of(self, other: "ActionSequence") -> bool:
        """Whether this sequence is a (not necessarily contiguous)
        subsequence of ``other``, matching event occurrences in order."""
        it = iter(other.events)
        return all(any(mine == theirs for theirs in it) for mine in self._events)

    def count(self, action: Action) -> int:  # type: ignore[override]
        return self._events.count(action)

    def first_index_of(self, pred: Callable[[Action], bool]) -> Optional[int]:
        """0-based index of the first event satisfying ``pred``, or None."""
        for i, a in enumerate(self._events):
            if pred(a):
                return i
        return None

    def __repr__(self) -> str:
        inner = ", ".join(str(a) for a in self._events[:8])
        more = f", ...(+{len(self._events) - 8})" if len(self._events) > 8 else ""
        return f"{type(self).__name__}([{inner}{more}])"


class Schedule(ActionSequence):
    """The schedule of an execution: all its events, internal and external."""


class Trace(ActionSequence):
    """The trace of an execution: its external events only."""


def project(sequence: ActionSequence, selector: Selector) -> ActionSequence:
    """Free-function form of :meth:`ActionSequence.project`."""
    return sequence.project(selector)


class Execution:
    """An execution fragment: alternating states and actions.

    ``states[k]`` is the state before ``actions[k]``; ``states[-1]`` is the
    final state.  A null execution fragment contains a single state and no
    actions.
    """

    __slots__ = ("_states", "_actions")

    def __init__(self, states: Iterable[State], actions: Iterable[Action]):
        self._states: Tuple[State, ...] = tuple(states)
        self._actions: Tuple[Action, ...] = tuple(actions)
        if len(self._states) != len(self._actions) + 1:
            raise ValueError(
                f"an execution with {len(self._actions)} actions needs "
                f"{len(self._actions) + 1} states, got {len(self._states)}"
            )

    # -- Accessors -----------------------------------------------------------

    @property
    def states(self) -> Tuple[State, ...]:
        return self._states

    @property
    def actions(self) -> Tuple[Action, ...]:
        return self._actions

    @property
    def first_state(self) -> State:
        return self._states[0]

    @property
    def final_state(self) -> State:
        return self._states[-1]

    def __len__(self) -> int:
        """The number of events in the execution."""
        return len(self._actions)

    def is_null(self) -> bool:
        """Whether this is a null execution fragment (one state, no events)."""
        return not self._actions

    # -- Derived sequences ----------------------------------------------------

    def schedule(self) -> Schedule:
        """The schedule of this execution (all events)."""
        return Schedule(self._actions)

    def trace(self, automaton: Automaton) -> Trace:
        """The trace of this execution: events external to ``automaton``."""
        sig = automaton.signature
        return Trace(a for a in self._actions if sig.is_external(a))

    def project_actions(self, selector: Selector) -> ActionSequence:
        """Project the event sequence over a selector."""
        return self.schedule().project(selector)

    # -- Operations -----------------------------------------------------------

    def steps(self) -> Iterator[Tuple[State, Action, State]]:
        """Iterate over the (s, a, s') steps of the execution."""
        for k, action in enumerate(self._actions):
            yield self._states[k], action, self._states[k + 1]

    def prefix(self, num_events: int) -> "Execution":
        """The prefix containing the first ``num_events`` events."""
        if num_events < 0 or num_events > len(self._actions):
            raise ValueError(f"prefix length {num_events} out of range")
        return Execution(
            self._states[: num_events + 1], self._actions[:num_events]
        )

    def concat(self, other: "Execution") -> "Execution":
        """Concatenation ``alpha1 . alpha2`` (Section 2.2).

        Requires that ``other`` starts in this execution's final state.
        """
        if self.final_state != other.first_state:
            raise ValueError(
                "cannot concatenate: second fragment does not start in the "
                "first fragment's final state"
            )
        return Execution(
            self._states + other.states[1:], self._actions + other.actions
        )

    def extend(self, action: Action, new_state: State) -> "Execution":
        """The execution obtained by appending one step."""
        return Execution(
            self._states + (new_state,), self._actions + (action,)
        )

    def __eq__(self, other) -> bool:
        if isinstance(other, Execution):
            return (
                self._states == other._states
                and self._actions == other._actions
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._states, self._actions))

    def __repr__(self) -> str:
        return f"Execution(<{len(self._actions)} events>)"

    # -- Validation ----------------------------------------------------------

    def is_execution_of(self, automaton: Automaton) -> bool:
        """Check this fragment against ``automaton``'s transition relation."""
        for state, action, next_state in self.steps():
            if not automaton.enabled(state, action):
                return False
            if automaton.apply(state, action) != next_state:
                return False
        return True


def apply_schedule(
    automaton: Automaton,
    schedule: Iterable[Action],
    start: Optional[State] = None,
) -> Execution:
    """The result of applying ``schedule`` to ``automaton`` in ``start``.

    Raises ``ValueError`` if the schedule is not applicable (some event is
    not enabled in the state where it is applied), mirroring the paper's
    definition of applicability (Section 2.2).
    """
    state = automaton.initial_state() if start is None else start
    states: List[State] = [state]
    actions: List[Action] = []
    for action in schedule:
        if not automaton.enabled(state, action):
            raise ValueError(
                f"schedule not applicable: {action} not enabled after "
                f"{len(actions)} events"
            )
        state = automaton.apply(state, action)
        states.append(state)
        actions.append(action)
    return Execution(states, actions)
