"""The (untagged) task tree R (Section 8.1).

R is the infinite |L|-ary tree whose edges are labeled by the elements of
L; it depends only on the system's task structure, not on any FD
sequence.  This class provides the combinatorics — path navigation,
counting, subtree sizes — that the tagged tree builds on, and exists
mostly to mirror the paper's two-step construction (task tree first,
tagging second).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple


class TaskTree:
    """The infinite tree over a label set; nodes are label paths."""

    def __init__(self, labels: Sequence[str]):
        if len(set(labels)) != len(labels):
            raise ValueError("labels must be distinct")
        self.labels: Tuple[str, ...] = tuple(labels)

    @property
    def arity(self) -> int:
        return len(self.labels)

    def root(self) -> Tuple[str, ...]:
        """The root node (the empty path, the paper's top element)."""
        return ()

    def child(self, node: Tuple[str, ...], label: str) -> Tuple[str, ...]:
        """The l-child of a node."""
        if label not in self.labels:
            raise KeyError(f"unknown label {label!r}")
        return node + (label,)

    def children(self, node: Tuple[str, ...]) -> List[Tuple[str, ...]]:
        return [node + (label,) for label in self.labels]

    def parent(self, node: Tuple[str, ...]) -> Tuple[str, ...]:
        if not node:
            raise ValueError("the root has no parent")
        return node[:-1]

    def depth(self, node: Tuple[str, ...]) -> int:
        return len(node)

    def is_descendant(
        self, node: Tuple[str, ...], ancestor: Tuple[str, ...]
    ) -> bool:
        """Whether ``node`` is a (possibly improper) descendant."""
        return node[: len(ancestor)] == ancestor

    def nodes_at_depth(self, depth: int) -> Iterator[Tuple[str, ...]]:
        """All nodes at the given depth (|L|^depth of them)."""
        if depth == 0:
            yield ()
            return
        for prefix in self.nodes_at_depth(depth - 1):
            for label in self.labels:
                yield prefix + (label,)

    def count_at_depth(self, depth: int) -> int:
        return self.arity**depth

    def subtree_size(self, depth: int) -> int:
        """Number of nodes of the depth-bounded subtree R_x (Section 8.3)."""
        if self.arity == 1:
            return depth + 1
        return (self.arity ** (depth + 1) - 1) // (self.arity - 1)

    def walk(self, path: Sequence[str]) -> Tuple[str, ...]:
        """The node reached by following ``path`` from the root."""
        node = self.root()
        for label in path:
            node = self.child(node, label)
        return node
