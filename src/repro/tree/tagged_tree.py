"""The tagged tree R^{t_D} (Section 8.2) as a finite quotient graph.

Each node N of R^{t_D} carries a config tag c_N (a system state) and an
FD-sequence tag t_N (the unconsumed suffix of t_D); each edge carries an
action tag (an action or the bottom placeholder).  Lemma 33 shows that two
nodes with equal tags have tag-isomorphic subtrees, so all analyses
(valence, hooks) factor through the quotient whose vertices are

    (configuration, number of t_D events consumed).

:class:`TaggedTreeGraph` materializes the reachable quotient breadth-first
up to a vertex bound.  ⊥-tagged edges are self-loops in the quotient
(config and FD tag unchanged, Proposition 30) and are recorded as such.

The system composition must contain the distributed algorithm, channels
and environment, but *neither* a failure-detector automaton *nor* the
crash automaton: both crash events and detector outputs are supplied by
t_D through the FD edges, exactly as in Section 8.2 (t_D ranges over
I-hat ∪ O_D).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.ioa.actions import Action
from repro.ioa.automaton import State
from repro.ioa.composition import Composition
from repro.obs.prof import cache_counter, cache_stats_delta, cache_stats_snapshot
from repro.tree.labels import FD_LABEL, tree_labels


class TreeVertex:
    """A quotient vertex: config tag plus consumed-prefix length of t_D.

    Vertices are the keys of every tree/valence/hook dictionary, so the
    hash of the (deeply nested) config tuple is computed once at
    construction and cached — re-hashing it on every lookup dominated
    tree-analysis profiles.  Instances are immutable value objects:
    equality is by ``(config, fd_index)``.

    A graph build *interns* its vertices: exactly one instance exists
    per distinct vertex of a built graph, carrying its breadth-first
    discovery ``index`` (dense, root = 0).  Downstream analyses use the
    index to run over flat arrays instead of vertex-keyed dicts.
    Hand-constructed vertices (equal by value, ``index`` = -1) remain
    valid dictionary probes.
    """

    __slots__ = ("config", "fd_index", "index", "_hash")

    def __init__(self, config: State, fd_index: int):
        self.config = config
        self.fd_index = fd_index
        #: Dense discovery index within the graph that interned this
        #: vertex; -1 until interned.
        self.index = -1
        self._hash = hash((config, fd_index))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, TreeVertex):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.fd_index == other.fd_index
            and self.config == other.config
        )

    def __repr__(self) -> str:
        return f"TreeVertex(fd_index={self.fd_index})"


@dataclass(frozen=True)
class TreeEdge:
    """One labeled edge of the tagged tree (quotiented).

    ``action`` is the action tag (None encodes the bottom placeholder, in
    which case ``target`` equals the source vertex)."""

    source: TreeVertex
    label: str
    action: Optional[Action]
    target: TreeVertex


class TaggedTreeGraph:
    """The reachable quotient of R^{t_D}, built breadth-first.

    Parameters
    ----------
    composition:
        The system S (algorithm + channels + environment).
    fd_sequence:
        The fixed t_D over I-hat ∪ O_D.
    max_vertices:
        Exploration bound; exceeding it raises ``RuntimeError`` (choose a
        quiescent algorithm or a shorter t_D).
    instrument:
        Anything :func:`repro.obs.instrument.coerce_instrument` accepts
        (typically a :class:`repro.obs.metrics.MetricsRegistry`); the
        build records ``tree.vertices`` / ``tree.edges`` counters
        (cumulative over builds) and a ``tree.build_s`` wall-time
        histogram into the metrics half.
    compiled:
        ``True`` builds the quotient over the compiled core
        (:mod:`repro.compiled`): configurations become interned ids, the
        FD/task applies go through the int-keyed transition table (so
        the t_D actions' repeated applies are memoized across FD
        indices), and vertex probes hash int pairs instead of nested
        config tuples.  Discovery order, counters and error messages are
        identical to the interpreted build — the graphs are equal edge
        for edge.  ``False`` forces the interpreted build; ``None``
        (default) defers to the process default.
    """

    def __init__(
        self,
        composition: Composition,
        fd_sequence: Sequence[Action],
        max_vertices: int = 200_000,
        instrument=None,
        compiled: Optional[bool] = None,
    ):
        from repro.compiled.config import resolve_compiled
        from repro.obs.instrument import coerce_instrument

        self.composition = composition
        self.fd_sequence: Tuple[Action, ...] = tuple(fd_sequence)
        self.labels: List[str] = tree_labels(composition)
        self.max_vertices = max_vertices
        self.compiled = resolve_compiled(compiled)
        self.metrics = metrics = coerce_instrument(instrument).metrics
        self.root = TreeVertex(composition.initial_state(), 0)
        self.root.index = 0
        #: vertex -> {label: (action tag, successor vertex)}
        self.edges: Dict[
            TreeVertex, Dict[str, Tuple[Optional[Action], TreeVertex]]
        ] = {}
        #: canonical vertices in discovery order (``vertex.index`` keys it)
        self._vertices: List[TreeVertex] = []
        #: config -> [(task label, action tag, successor config)]
        self._task_edge_memo: Dict[
            State, List[Tuple[str, Optional[Action], Optional[State]]]
        ] = {}
        # Cache telemetry (repro.obs.prof): the task-edge memo and vertex
        # interning tally into the process-global counters; a hit on
        # ``tree.vertices`` is a quotient-graph revisit (Lemma 33 doing
        # its work), a miss is a freshly interned vertex.
        self._c_task_edges = cache_counter("tree.task-edges")
        self._c_vertices = cache_counter("tree.vertices")
        build = self._build_compiled if self.compiled else self._build
        if metrics is not None:
            cache_base = cache_stats_snapshot()
            with metrics.timer("tree.build_s"):
                build()
            metrics.counter("tree.vertices").inc(len(self.edges))
            metrics.counter("tree.edges").inc(
                sum(len(out) for out in self.edges.values())
            )
            for name, stats in cache_stats_delta(cache_base).items():
                for kind in ("hits", "misses", "evictions"):
                    if stats[kind]:
                        metrics.counter(f"cache.{name}.{kind}").inc(
                            stats[kind]
                        )
        else:
            build()

    def attach_metrics(self, registry) -> "TaggedTreeGraph":
        """Record subsequent tree operations into ``registry``; returns
        self.  (The build itself is timed only when the registry is
        passed at construction via ``instrument=``.)"""
        self.metrics = registry
        return self

    # -- Construction --------------------------------------------------------

    def _task_edges(
        self, config: State
    ) -> List[Tuple[str, Optional[Action], Optional[State]]]:
        """The task-labeled edges out of a configuration (Section 8.2):
        per task label, its action tag (None for bottom) and successor
        configuration.

        Task edges are independent of the FD index, and the quotient
        typically revisits the same configuration at many FD indices
        (every ⊥-consuming FD step duplicates the config), so the result
        is memoized per config: one ``enabled_by_task`` snapshot and one
        ``apply`` per enabled task, shared across all those vertices.
        """
        entries = self._task_edge_memo.get(config)
        if entries is not None:
            self._c_task_edges.hits += 1
            return entries
        self._c_task_edges.misses += 1
        snapshot = self.composition.enabled_by_task(config)
        entries = []
        for label in self.labels:
            if label == FD_LABEL:
                continue
            enabled = snapshot.get(label, ())
            if not enabled:
                entries.append((label, None, None))
                continue
            if len(enabled) > 1:
                raise RuntimeError(
                    f"task {label} is not task-deterministic in some "
                    f"reachable state (enabled: {enabled}); the tagged "
                    "tree requires a task-deterministic system"
                )
            action = enabled[0]
            entries.append(
                (label, action, self.composition.apply(config, action))
            )
        self._task_edge_memo[config] = entries
        return entries

    def _register(self, vertex: TreeVertex) -> TreeVertex:
        """Admit a fresh canonical vertex, enforcing the bound."""
        if len(self.edges) >= self.max_vertices:
            raise RuntimeError(
                f"tagged tree exceeded {self.max_vertices} "
                "quotient vertices"
            )
        vertex.index = len(self.edges)
        self.edges[vertex] = {}
        self._vertices.append(vertex)
        return vertex

    def _build(self) -> None:
        fd_len = len(self.fd_sequence)
        frontier = deque([self.root])
        canon: Dict[TreeVertex, TreeVertex] = {self.root: self.root}
        self._register(self.root)

        def intern(target: TreeVertex) -> TreeVertex:
            """The canonical instance of a reached vertex (registering
            first sightings)."""
            known = canon.get(target)
            if known is None:
                self._c_vertices.misses += 1
                canon[target] = target
                self._register(target)
                frontier.append(target)
                return target
            self._c_vertices.hits += 1
            return known

        while frontier:
            vertex = frontier.popleft()
            out: Dict[str, Tuple[Optional[Action], TreeVertex]] = {}
            # The FD edge consumes t_D, so it depends on the full vertex.
            if vertex.fd_index < fd_len:
                action = self.fd_sequence[vertex.fd_index]
                config = self.composition.apply(vertex.config, action)
                out[FD_LABEL] = (
                    action,
                    intern(TreeVertex(config, vertex.fd_index + 1)),
                )
            else:
                out[FD_LABEL] = (None, vertex)
            # Task edges depend only on the config: shared via the memo.
            for label, action, config in self._task_edges(vertex.config):
                if action is None:
                    out[label] = (None, vertex)
                else:
                    out[label] = (
                        action,
                        intern(TreeVertex(config, vertex.fd_index)),
                    )
            self.edges[vertex] = out

    def _build_compiled(self) -> None:
        """The interpreted build, lowered over the compiled core.

        Vertices are probed as ``(config id, fd_index)`` int pairs —
        no nested-tuple hashing — and every FD/task apply goes through
        the core's int-keyed transition table, so t_D's repeated actions
        and the quotient's config revisits pay one interpreted apply
        each, total.  Discovery (BFS; FD edge first, then task labels in
        order) and the ``tree.vertices`` / ``tree.task-edges`` hit/miss
        pattern are identical to :meth:`_build`, so the resulting graph
        is equal edge for edge and counter for counter.
        """
        from repro.compiled.tables import compile_automaton

        core = compile_automaton(self.composition)
        fd_sequence = self.fd_sequence
        fd_len = len(fd_sequence)
        fd_aids = [core.intern_action(a) for a in fd_sequence]
        root_cid = core.intern_config(self.root.config)
        # Vertex probes use one packed int: fd_index ranges over
        # 0..fd_len inclusive, so ``cid * (fd_len + 1) + fd_index`` is
        # injective — a single small-int hash per probe.
        stride = fd_len + 1
        vmap: Dict[int, TreeVertex] = {root_cid * stride: self.root}
        frontier = deque([(self.root, root_cid)])
        self._register(self.root)
        #: cid -> [(task label, action tag, successor cid)]
        task_memo: Dict[
            int, List[Tuple[str, Optional[Action], Optional[int]]]
        ] = {}
        task_index = {
            label: k for k, label in enumerate(core.task_names)
        }
        task_cols = [
            (label, task_index[label])
            for label in self.labels
            if label != FD_LABEL
        ]
        # The loop below is the E12/E13 hot path: core internals and
        # counters are hoisted into locals, and the apply-memo hit path
        # is inlined (same tallies as ``core.apply_ids``).
        edges = self.edges
        canonical = self._vertices
        max_vertices = self.max_vertices
        c_vert = self._c_vertices
        c_task = self._c_task_edges
        c_apply = core._c_apply
        apply_memo = core._apply_memo
        transition = core._transition
        state_of = core.state_of
        popleft = frontier.popleft
        push = frontier.append

        def admit(cid: int, fd_index: int) -> TreeVertex:
            # The miss half of vertex interning; the hit path (a single
            # packed-int probe) is inlined at each edge below.
            c_vert.misses += 1
            vertex = TreeVertex(state_of(cid), fd_index)
            vmap[cid * stride + fd_index] = vertex
            if len(edges) >= max_vertices:
                raise RuntimeError(
                    f"tagged tree exceeded {max_vertices} "
                    "quotient vertices"
                )
            vertex.index = len(edges)
            edges[vertex] = {}
            canonical.append(vertex)
            push((vertex, cid))
            return vertex

        def task_edges(cid: int):
            c_task.misses += 1
            snapshot = core.snapshot_full(cid)
            entries = []
            for label, col in task_cols:
                aids = snapshot[col]
                if not aids:
                    entries.append((label, None, None))
                    continue
                if len(aids) > 1:
                    # Recompute through the base composition so the
                    # message matches the interpreted build's exactly
                    # (snapshot tuples, not interned-sorted ones).
                    enabled = self.composition.enabled_by_task(
                        state_of(cid)
                    ).get(label)
                    raise RuntimeError(
                        f"task {label} is not task-deterministic in some "
                        f"reachable state (enabled: {enabled}); the tagged "
                        "tree requires a task-deterministic system"
                    )
                aid = aids[0]
                akey = (cid, aid)
                nid = apply_memo.get(akey)
                if nid is None:
                    c_apply.misses += 1
                    nid = transition(cid, aid)
                    apply_memo[akey] = nid
                else:
                    c_apply.hits += 1
                entries.append((label, core.action_of(aid), nid))
            task_memo[cid] = entries
            return entries

        while frontier:
            vertex, cid = popleft()
            fdi = vertex.fd_index
            out: Dict[str, Tuple[Optional[Action], TreeVertex]] = {}
            if fdi < fd_len:
                aid = fd_aids[fdi]
                akey = (cid, aid)
                nid = apply_memo.get(akey)
                if nid is None:
                    c_apply.misses += 1
                    nid = transition(cid, aid)
                    apply_memo[akey] = nid
                else:
                    c_apply.hits += 1
                known = vmap.get(nid * stride + fdi + 1)
                if known is None:
                    known = admit(nid, fdi + 1)
                else:
                    c_vert.hits += 1
                out[FD_LABEL] = (fd_sequence[fdi], known)
            else:
                out[FD_LABEL] = (None, vertex)
            entries = task_memo.get(cid)
            if entries is None:
                entries = task_edges(cid)
            else:
                c_task.hits += 1
            bottom = (None, vertex)
            for label, action, succ_cid in entries:
                if action is None:
                    out[label] = bottom
                else:
                    known = vmap.get(succ_cid * stride + fdi)
                    if known is None:
                        known = admit(succ_cid, fdi)
                    else:
                        c_vert.hits += 1
                    out[label] = (action, known)
            edges[vertex] = out

    # -- Queries --------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self.edges)

    def vertices(self) -> Iterator[TreeVertex]:
        return iter(self.edges)

    def out_edges(self, vertex: TreeVertex) -> Iterator[TreeEdge]:
        for label, (action, target) in self.edges[vertex].items():
            yield TreeEdge(vertex, label, action, target)

    def child(
        self, vertex: TreeVertex, label: str
    ) -> Tuple[Optional[Action], TreeVertex]:
        """The l-child of a vertex, with the edge's action tag."""
        return self.edges[vertex][label]

    def successors(self, vertex: TreeVertex) -> List[TreeVertex]:
        """Distinct successors along non-bottom edges."""
        seen: Dict[TreeVertex, None] = {}
        for _label, (action, target) in self.edges[vertex].items():
            if action is not None and target not in seen:
                seen[target] = None
        return list(seen)

    def fd_suffix(self, vertex: TreeVertex) -> Tuple[Action, ...]:
        """The FD-sequence tag t_N of the vertex."""
        return self.fd_sequence[vertex.fd_index :]

    def walk(
        self, path: Sequence[str]
    ) -> Tuple[TreeVertex, List[Optional[Action]]]:
        """Follow labels from the root; return the final vertex and the
        action tags encountered (the exe(N) events, with bottoms)."""
        vertex = self.root
        actions: List[Optional[Action]] = []
        for label in path:
            action, vertex = self.child(vertex, label)
            actions.append(action)
        return vertex, actions

    def execution_for_walk(self, path: Sequence[str]):
        """The execution exe(N) of the node reached by ``path``
        (Section 8.3): alternating config tags and the *non-bottom*
        action tags along the walk, ending in the node's config tag.

        Proposition 29 states exe(N) is an execution of the system with
        ``exe(N)|_{I-hat ∪ O_D} · t_N = t_D``; the returned
        :class:`~repro.ioa.executions.Execution` lets tests verify both
        halves directly.
        """
        from repro.ioa.executions import Execution

        states = [self.root.config]
        actions: List[Action] = []
        vertex = self.root
        for label in path:
            action, vertex = self.child(vertex, label)
            if action is not None:  # bottom edges add nothing (Prop. 30)
                actions.append(action)
                states.append(vertex.config)
        return Execution(states, actions), vertex

    # -- Theorem 41 support -------------------------------------------------------

    def bounded_view(self, depth: int) -> Dict[Tuple[str, ...], Optional[Action]]:
        """The action tags of the depth-bounded tree R^{t_D}_x, as a map
        from label paths to the action tag of the path's final edge.

        Two FD sequences sharing a length-x prefix yield equal bounded
        views at depth x (Theorem 41); the E12 experiment compares these
        maps directly."""
        view: Dict[Tuple[str, ...], Optional[Action]] = {}

        def recurse(vertex: TreeVertex, path: Tuple[str, ...]) -> None:
            if len(path) >= depth:
                return
            for label in self.labels:
                action, target = self.child(vertex, label)
                new_path = path + (label,)
                view[new_path] = action
                recurse(target, new_path)

        recurse(self.root, ())
        return view
