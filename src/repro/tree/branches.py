"""Fair branches of the tagged tree (Section 8.3, Lemma 36).

A branch is fair when every label occurs infinitely often along it; the
round-robin branch (cycling over the label set forever) is the canonical
example.  Lemma 36: for every fair branch b, exe(b) is a fair execution
of the system with ``exe(b)|_{I-hat ∪ O_D} = t_D``; Proposition 48 then
gives exactly one decision value on each fair branch of a consensus
system.

With a finite t_D and a quiescent algorithm, a sufficiently long
round-robin prefix realizes the limit: t_D is fully consumed, the system
reaches quiescence, and extending the branch further adds only bottom
edges.  :func:`fair_branch_execution` builds that prefix.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.ioa.executions import Execution
from repro.tree.tagged_tree import TaggedTreeGraph, TreeVertex


def round_robin_labels(
    graph: TaggedTreeGraph, num_cycles: int
) -> List[str]:
    """``num_cycles`` full passes over the label set — a fair-branch
    prefix in which every label occurred ``num_cycles`` times."""
    return list(graph.labels) * num_cycles


def fair_branch_execution(
    graph: TaggedTreeGraph,
    max_cycles: int = 200,
) -> Tuple[Execution, TreeVertex, int]:
    """exe(b) for the round-robin fair branch, truncated at stabilization.

    Follows the round-robin branch cycle by cycle until one entire cycle
    adds no events (every edge was bottom: t_D exhausted and the system
    quiescent), or ``max_cycles`` passes.  Returns the execution, the
    final vertex, and the number of cycles taken.
    """
    states = [graph.root.config]
    actions = []
    vertex = graph.root
    cycles = 0
    for _cycle in range(max_cycles):
        cycles += 1
        progressed = False
        for label in graph.labels:
            action, vertex = graph.child(vertex, label)
            if action is not None:
                actions.append(action)
                states.append(vertex.config)
                progressed = True
        if not progressed:
            break
    return Execution(states, actions), vertex, cycles


def branch_is_settled(graph: TaggedTreeGraph, vertex: TreeVertex) -> bool:
    """Whether the branch has stabilized at ``vertex``: t_D is exhausted
    and no task edge is enabled (all outgoing edges are bottom)."""
    if vertex.fd_index != len(graph.fd_sequence):
        return False
    return all(
        action is None
        for (action, _target) in graph.edges[vertex].values()
    )
