"""Valence of tree nodes (Section 9.5).

A node N is *v-valent* when some descendant's execution has decision value
v and no descendant's has 1-v; *bivalent* when both values are reachable.
Decision values of exe(N) itself are part of the node's configuration (a
process that has decided records it in its state), so on the quotient
graph the valence of a vertex is

    vals(v) = decisions recorded in v's configuration
              ∪ ⋃ { vals(u) : u a non-bottom successor of v }

computed exactly as a backwards fixpoint (cycles — unfair loops — are
handled by iterating to stability).  A vertex with an empty value set is
*undetermined*: no decision is reachable from it, which in a well-formed
setup only happens when t_D is too short for the algorithm to finish; the
analyses treat it as a configuration error.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.ioa.automaton import State
from repro.tree.tagged_tree import TaggedTreeGraph, TreeVertex

#: Classification constants.
BIVALENT = "bivalent"
UNDETERMINED = "undetermined"


@dataclass(frozen=True)
class Valence:
    """The set of decision values reachable from a vertex."""

    values: FrozenSet[int]

    @property
    def bivalent(self) -> bool:
        return len(self.values) >= 2

    @property
    def univalent(self) -> bool:
        return len(self.values) == 1

    @property
    def undetermined(self) -> bool:
        return not self.values

    @property
    def value(self) -> Optional[int]:
        """The single value of a univalent vertex, else None."""
        if self.univalent:
            return next(iter(self.values))
        return None

    def describe(self) -> str:
        if self.bivalent:
            return BIVALENT
        if self.univalent:
            return f"{self.value}-valent"
        return UNDETERMINED


class ValenceAnalysis:
    """Exact valence of every vertex of a tagged-tree quotient graph.

    Parameters
    ----------
    graph:
        The tagged tree.
    decided_values:
        ``decided_values(config) -> iterable of decision values recorded
        in the configuration`` (use
        :func:`decision_extractor_for_processes` for standard systems).
    """

    def __init__(
        self,
        graph: TaggedTreeGraph,
        decided_values: Callable[[State], Iterable[int]],
    ):
        self.graph = graph
        self._decided_values = decided_values
        self._valence: Dict[TreeVertex, FrozenSet[int]] = {}
        self._compute()

    def _compute(self) -> None:
        # The successor lists are asked for once per worklist visit; the
        # graph rebuilds them from the edge dicts on every call, so
        # materialize them once up front.
        successors: Dict[TreeVertex, List[TreeVertex]] = {}
        predecessors: Dict[TreeVertex, List[TreeVertex]] = defaultdict(list)
        vals: Dict[TreeVertex, Set[int]] = {}
        for vertex in self.graph.vertices():
            vals[vertex] = set(self._decided_values(vertex.config))
            succ = self.graph.successors(vertex)
            successors[vertex] = succ
            for successor in succ:
                if successor != vertex:
                    predecessors[successor].append(vertex)
        worklist = deque(self.graph.vertices())
        while worklist:
            vertex = worklist.popleft()
            merged: Set[int] = set(vals[vertex])
            for successor in successors[vertex]:
                merged |= vals[successor]
            if merged != vals[vertex]:
                vals[vertex] = merged
                for pred in predecessors[vertex]:
                    worklist.append(pred)
        self._valence = {v: frozenset(s) for v, s in vals.items()}

    # -- Queries --------------------------------------------------------------

    def valence(self, vertex: TreeVertex) -> Valence:
        return Valence(self._valence[vertex])

    def root_valence(self) -> Valence:
        return self.valence(self.graph.root)

    def bivalent_vertices(self) -> List[TreeVertex]:
        return [
            v for v, s in self._valence.items() if len(s) >= 2
        ]

    def univalent_vertices(self) -> List[TreeVertex]:
        return [v for v, s in self._valence.items() if len(s) == 1]

    def undetermined_vertices(self) -> List[TreeVertex]:
        return [v for v, s in self._valence.items() if not s]

    def counts(self) -> Dict[str, int]:
        """Vertex counts by classification (for the E13 series)."""
        counts = {BIVALENT: 0, "univalent": 0, UNDETERMINED: 0}
        for values in self._valence.values():
            if len(values) >= 2:
                counts[BIVALENT] += 1
            elif len(values) == 1:
                counts["univalent"] += 1
            else:
                counts[UNDETERMINED] += 1
        return counts


def decision_extractor_for_processes(
    composition,
    processes,
    decision_fn,
) -> Callable[[State], List[int]]:
    """Build a ``decided_values`` extractor for a standard system.

    Parameters
    ----------
    composition:
        The system composition the tree runs over.
    processes:
        The process automata whose states carry decisions.
    decision_fn:
        ``decision_fn(process_state) -> Optional[int]`` (e.g.
        ``PerfectConsensusProcess.decision``).
    """

    def extract(config: State) -> List[int]:
        values = []
        for process in processes:
            state = composition.component_state(config, process)
            decided = decision_fn(state)
            if decided is not None:
                values.append(decided)
        return values

    return extract
