"""Valence of tree nodes (Section 9.5).

A node N is *v-valent* when some descendant's execution has decision value
v and no descendant's has 1-v; *bivalent* when both values are reachable.
Decision values of exe(N) itself are part of the node's configuration (a
process that has decided records it in its state), so on the quotient
graph the valence of a vertex is

    vals(v) = decisions recorded in v's configuration
              ∪ ⋃ { vals(u) : u a non-bottom successor of v }

computed exactly as a backwards fixpoint (cycles — unfair loops — are
handled by iterating to stability).  A vertex with an empty value set is
*undetermined*: no decision is reachable from it, which in a well-formed
setup only happens when t_D is too short for the algorithm to finish; the
analyses treat it as a configuration error.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.ioa.automaton import State
from repro.tree.tagged_tree import TaggedTreeGraph, TreeVertex

#: Classification constants.
BIVALENT = "bivalent"
UNDETERMINED = "undetermined"


def _mask(values: Iterable[int], bit_of: Dict[int, int]) -> int:
    """The bitmask of a seed value collection."""
    mask = 0
    for value in values:
        mask |= bit_of[value]
    return mask


@dataclass(frozen=True)
class Valence:
    """The set of decision values reachable from a vertex."""

    values: FrozenSet[int]

    @property
    def bivalent(self) -> bool:
        return len(self.values) >= 2

    @property
    def univalent(self) -> bool:
        return len(self.values) == 1

    @property
    def undetermined(self) -> bool:
        return not self.values

    @property
    def value(self) -> Optional[int]:
        """The single value of a univalent vertex, else None."""
        if self.univalent:
            return next(iter(self.values))
        return None

    def describe(self) -> str:
        if self.bivalent:
            return BIVALENT
        if self.univalent:
            return f"{self.value}-valent"
        return UNDETERMINED


class ValenceAnalysis:
    """Exact valence of every vertex of a tagged-tree quotient graph.

    Parameters
    ----------
    graph:
        The tagged tree.
    decided_values:
        ``decided_values(config) -> iterable of decision values recorded
        in the configuration`` (use
        :func:`decision_extractor_for_processes` for standard systems).
    """

    def __init__(
        self,
        graph: TaggedTreeGraph,
        decided_values: Callable[[State], Iterable[int]],
    ):
        self.graph = graph
        self._decided_values = decided_values
        self._valence: Dict[TreeVertex, FrozenSet[int]] = {}
        self._compute()

    def _compute(self) -> None:
        # The fixpoint runs over flat arrays keyed by the vertices'
        # dense discovery indices (assigned by the graph build) —
        # successor/predecessor lists become int tuples and the worklist
        # holds ints, so the inner loop never hashes a vertex.  Vertex
        # order (and hence ``bivalent_vertices()`` order) is the graph's
        # insertion order, exactly as the dict-keyed version produced.
        verts = list(self.graph.vertices())
        n = len(verts)
        # Graph-built vertices carry their discovery index; hand-built
        # graphs (index -1, or re-keyed dicts) fall back to hashing.
        interned = all(v.index == i for i, v in enumerate(verts))
        if not interned:
            index: Dict[TreeVertex, int] = {
                v: i for i, v in enumerate(verts)
            }
        # Decision values enter only at the seeds (the union never
        # invents new ones), so the fixpoint runs over int bitmasks: one
        # bit per distinct seeded value, merged with ``|`` — no set
        # allocation in the inner loop.
        # Quotient vertices share config objects across FD indices, so
        # seed extraction is memoized on config identity (the vertex
        # list keeps the objects — and hence their ids — alive).
        decided = self._decided_values
        seed_memo: Dict[int, List[int]] = {}
        seeds: List[List[int]] = []
        for v in verts:
            config = v.config
            seeded = seed_memo.get(id(config))
            if seeded is None:
                seeded = list(decided(config))
                seed_memo[id(config)] = seeded
            seeds.append(seeded)
        bit_of: Dict[int, int] = {}
        for seeded in seeds:
            for value in seeded:
                if value not in bit_of:
                    bit_of[value] = 1 << len(bit_of)
        vals: List[int] = [
            0 if not seeded else _mask(seeded, bit_of) for seeded in seeds
        ]
        edges = self.graph.edges
        succ_ids: List[Tuple[int, ...]] = []
        pred_ids: List[List[int]] = [[] for _ in range(n)]
        for i, vertex in enumerate(verts):
            # Distinct non-bottom successors, inlined from
            # ``graph.successors`` but deduplicated on int ids.
            sid_list: List[int] = []
            for action, target in edges[vertex].values():
                if action is not None:
                    j = target.index if interned else index[target]
                    if j not in sid_list:
                        sid_list.append(j)
            succ_ids.append(tuple(sid_list))
            for j in sid_list:
                if j != i:
                    pred_ids[j].append(i)
        worklist = deque(range(n))
        popleft = worklist.popleft
        extend = worklist.extend
        while worklist:
            i = popleft()
            merged = vals[i]
            for j in succ_ids[i]:
                merged |= vals[j]
            if merged != vals[i]:
                vals[i] = merged
                extend(pred_ids[i])
        # Distinct masks are few (2^|values| at most); memoizing the
        # frozenset per mask keeps equal-valence vertices sharing one
        # object.
        unmask: Dict[int, FrozenSet[int]] = {}
        for mask in set(vals):
            unmask[mask] = frozenset(
                value for value, bit in bit_of.items() if mask & bit
            )
        self._valence = {v: unmask[vals[i]] for i, v in enumerate(verts)}

    # -- Queries --------------------------------------------------------------

    def valence(self, vertex: TreeVertex) -> Valence:
        return Valence(self._valence[vertex])

    def values_of(self, vertex: TreeVertex) -> FrozenSet[int]:
        """The raw reachable-value set of a vertex — what
        :meth:`valence` wraps; hot scans (the hook search) probe this to
        skip the wrapper allocation."""
        return self._valence[vertex]

    def root_valence(self) -> Valence:
        return self.valence(self.graph.root)

    def bivalent_vertices(self) -> List[TreeVertex]:
        return [
            v for v, s in self._valence.items() if len(s) >= 2
        ]

    def univalent_vertices(self) -> List[TreeVertex]:
        return [v for v, s in self._valence.items() if len(s) == 1]

    def undetermined_vertices(self) -> List[TreeVertex]:
        return [v for v, s in self._valence.items() if not s]

    def counts(self) -> Dict[str, int]:
        """Vertex counts by classification (for the E13 series)."""
        counts = {BIVALENT: 0, "univalent": 0, UNDETERMINED: 0}
        for values in self._valence.values():
            if len(values) >= 2:
                counts[BIVALENT] += 1
            elif len(values) == 1:
                counts["univalent"] += 1
            else:
                counts[UNDETERMINED] += 1
        return counts


def decision_extractor_for_processes(
    composition,
    processes,
    decision_fn,
) -> Callable[[State], List[int]]:
    """Build a ``decided_values`` extractor for a standard system.

    Parameters
    ----------
    composition:
        The system composition the tree runs over.
    processes:
        The process automata whose states carry decisions.
    decision_fn:
        ``decision_fn(process_state) -> Optional[int]`` (e.g.
        ``PerfectConsensusProcess.decision``).
    """

    # Component positions are fixed at composition time; resolving them
    # here keeps the per-config extraction to plain tuple indexing.
    slots = [
        composition.component_index(process) for process in processes
    ]

    def extract(config: State) -> List[int]:
        values = []
        for slot in slots:
            decided = decision_fn(config[slot])
            if decided is not None:
                values.append(decided)
        return values

    return extract
