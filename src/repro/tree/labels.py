"""Edge labels of the task tree (Section 8.1).

Every node of the tree R has one outgoing edge per label in

    L = {FD} ∪ {Proc_i} ∪ {Chan_{i,j}} ∪ {Env_{i,x}}.

In this implementation the task labels are exactly the namespaced task
names of the system composition (``"<component>:<task>"``), and ``FD`` is
the distinguished extra label whose action tags are drawn from the fixed
FD sequence t_D (which includes the crash events — t_D ranges over
I-hat ∪ O_D).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.ioa.composition import Composition

#: The distinguished label whose edges consume the FD sequence t_D.
FD_LABEL = "FD"


def tree_labels(composition: Composition) -> List[str]:
    """The label set L for a system composition: FD plus every task."""
    return [FD_LABEL] + list(composition.tasks())
