"""The tree representation of executions (Section 8) and its consensus
analysis (Section 9): valence and hooks.

The tagged tree R^{t_D} of a system S and FD sequence t_D is formally
infinite, but its tags depend only on the pair (configuration, position in
t_D) — that is exactly Lemma 33.  The implementation therefore works on
the *quotient graph* over those pairs, which is finite whenever the
algorithm under analysis is quiescent and t_D is finite, and computes
valence exactly by a reachability fixpoint.
"""

from repro.tree.labels import FD_LABEL, tree_labels
from repro.tree.task_tree import TaskTree
from repro.tree.tagged_tree import (
    TaggedTreeGraph,
    TreeEdge,
    TreeVertex,
)
from repro.tree.valence import (
    BIVALENT,
    UNDETERMINED,
    ValenceAnalysis,
    Valence,
)
from repro.tree.hooks import Hook, HookSearch, find_hooks
from repro.tree.branches import (
    branch_is_settled,
    fair_branch_execution,
    round_robin_labels,
)
from repro.tree.similarity import (
    Lemma39Report,
    SimilarityChecker,
    verify_lemma39,
)

__all__ = [
    "branch_is_settled",
    "fair_branch_execution",
    "round_robin_labels",
    "Lemma39Report",
    "SimilarityChecker",
    "verify_lemma39",
    "FD_LABEL",
    "tree_labels",
    "TaskTree",
    "TaggedTreeGraph",
    "TreeEdge",
    "TreeVertex",
    "BIVALENT",
    "UNDETERMINED",
    "Valence",
    "ValenceAnalysis",
    "Hook",
    "HookSearch",
    "find_hooks",
]
