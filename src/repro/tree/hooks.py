"""Hooks and their critical locations (Section 9.6).

A *hook* is a triple (N, l, r) of a tree node and two labels such that

1. N is bivalent,
2. N's l-child is v-valent (for some v), and
3. the l-child of N's r-child is (1-v)-valent.

The main theorem of the section (Theorem 59): for every FD sequence
t_D ∈ T_D with at most f crashes, R^{t_D} contains a hook; for every hook,
the action tags of the l- and r-edges are non-bottom (Lemma 56), occur at
the same location (Lemma 57) — the hook's *critical location* — and that
location is live in t_D (Lemma 58).  The critical location is where the
failure detector's information decides consensus: crash it and the
decision could not have hinged there.

:func:`find_hooks` enumerates hooks over the quotient graph;
:class:`HookSearch` packages the Theorem 59 property checks so the E13 and
E14 experiments can assert them wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.ioa.actions import Action
from repro.core.validity import live_locations
from repro.tree.tagged_tree import TaggedTreeGraph, TreeVertex
from repro.tree.valence import Valence, ValenceAnalysis


@dataclass(frozen=True)
class Hook:
    """A hook (N, l, r) together with its edge tags and valences."""

    node: TreeVertex
    l_label: str
    r_label: str
    l_action: Optional[Action]
    r_action: Optional[Action]
    l_child_valence: Valence
    rl_child_valence: Valence

    @property
    def critical_location(self) -> Optional[int]:
        """The shared location of the l- and r-edge action tags, or None
        if the tags are missing or disagree (Theorem 59 says neither can
        happen for a genuine hook)."""
        if self.l_action is None or self.r_action is None:
            return None
        if self.l_action.location != self.r_action.location:
            return None
        return self.l_action.location

    def satisfies_lemma56(self) -> bool:
        """Both action tags are non-bottom."""
        return self.l_action is not None and self.r_action is not None

    def satisfies_lemma57(self) -> bool:
        """Both action tags occur at the same location."""
        return (
            self.satisfies_lemma56()
            and self.l_action.location == self.r_action.location
        )

    def satisfies_lemma58(self, fd_sequence, locations) -> bool:
        """The critical location is live in t_D."""
        loc = self.critical_location
        return loc is not None and loc in live_locations(
            fd_sequence, locations
        )


def find_hooks(
    graph: TaggedTreeGraph,
    valence: ValenceAnalysis,
    max_hooks: Optional[int] = None,
    instrument=None,
) -> List[Hook]:
    """Enumerate hooks in the quotient graph.

    Scans every bivalent vertex N and every ordered label pair (l, r) with
    l != r, checking the valence pattern of the definition.  Self-loop
    (bottom) edges cannot form hooks (the child's valence equals the
    parent's, so it cannot be univalent when N is bivalent) but are still
    scanned for completeness — Lemma 56 is *verified*, not assumed.

    ``instrument`` (anything ``coerce_instrument`` accepts; its metrics
    half) records the ``hooks.vertices_scanned`` and ``hooks.found``
    counters.
    """
    from repro.obs.instrument import coerce_instrument

    metrics = coerce_instrument(instrument).metrics
    hooks: List[Hook] = []
    scanned = 0

    def _done(result: List[Hook]) -> List[Hook]:
        if metrics is not None:
            metrics.counter("hooks.vertices_scanned").inc(scanned)
            metrics.counter("hooks.found").inc(len(result))
        return result

    # The scan probes raw value sets (``values_of``) and only wraps them
    # in :class:`Valence` for the hooks it actually emits — the
    # candidate space is bivalent vertices x label pairs, so the probe
    # path is the analysis hot loop.
    edges = graph.edges
    values_of = valence.values_of
    labels = graph.labels
    for node in valence.bivalent_vertices():
        scanned += 1
        node_edges = edges[node]
        for l_label in labels:
            l_action, l_child = node_edges[l_label]
            sl = values_of(l_child)
            if len(sl) != 1:
                continue
            (v,) = sl
            for r_label in labels:
                if r_label == l_label:
                    continue
                r_action, r_child = node_edges[r_label]
                _rl_action, rl_child = edges[r_child][l_label]
                srl = values_of(rl_child)
                if len(srl) == 1 and 1 - v in srl:
                    hooks.append(
                        Hook(
                            node=node,
                            l_label=l_label,
                            r_label=r_label,
                            l_action=l_action,
                            r_action=r_action,
                            l_child_valence=Valence(sl),
                            rl_child_valence=Valence(srl),
                        )
                    )
                    if max_hooks is not None and len(hooks) >= max_hooks:
                        return _done(hooks)
    return _done(hooks)


@dataclass
class HookReport:
    """Aggregate Theorem 59 verdicts over all hooks of one tree."""

    num_hooks: int
    all_lemma56: bool
    all_lemma57: bool
    all_lemma58: bool
    critical_locations: Set[int]

    @property
    def theorem59_holds(self) -> bool:
        return (
            self.num_hooks > 0
            and self.all_lemma56
            and self.all_lemma57
            and self.all_lemma58
        )


class HookSearch:
    """Find hooks and check the Theorem 59 properties in one sweep."""

    def __init__(
        self,
        graph: TaggedTreeGraph,
        valence: ValenceAnalysis,
        locations: Sequence[int],
        instrument=None,
    ):
        from repro.obs.instrument import coerce_instrument

        self.graph = graph
        self.valence = valence
        self.locations = tuple(locations)
        self.metrics = coerce_instrument(instrument).metrics

    def attach_metrics(self, registry) -> "HookSearch":
        self.metrics = registry
        return self

    def report(self, max_hooks: Optional[int] = None) -> HookReport:
        hooks = find_hooks(
            self.graph, self.valence, max_hooks, instrument=self.metrics
        )
        fd = self.graph.fd_sequence
        return HookReport(
            num_hooks=len(hooks),
            all_lemma56=all(h.satisfies_lemma56() for h in hooks),
            all_lemma57=all(h.satisfies_lemma57() for h in hooks),
            all_lemma58=all(
                h.satisfies_lemma58(fd, self.locations) for h in hooks
            ),
            critical_locations={
                h.critical_location
                for h in hooks
                if h.critical_location is not None
            },
        )
