"""The similar-modulo-i relation on tagged-tree nodes (Section 8.3).

``N ~_i N'`` holds when the only automaton that could distinguish the two
configurations is the (crashed) process at location i:

1. ``crash_i`` occurred in both executions;
2. process states agree at every location j != i;
3. channel states agree for every channel not *from* i;
4. for channels from i, N's queue is a prefix of N''s;
5. environment states agree at every j != i;
6. the FD-sequence tags agree.

Lemma 39 shows ~_i is preserved by taking l-children (up to bottom
edges), and Theorem 40 lifts that to descendants; the Lemma 58 case
analysis rides on these.  :class:`SimilarityChecker` evaluates the
relation on quotient vertices, and :func:`verify_lemma39` checks the
child-preservation property exhaustively on a concrete tree — the E13/E14
experiments' structural backbone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.ioa.composition import Composition
from repro.system.channel import ChannelAutomaton
from repro.system.process import ProcessAutomaton
from repro.tree.tagged_tree import TaggedTreeGraph, TreeVertex


def _is_prefix(shorter: tuple, longer: tuple) -> bool:
    return shorter == longer[: len(shorter)]


class SimilarityChecker:
    """Evaluates ``N ~_i N'`` over a tagged tree's quotient vertices.

    Parameters
    ----------
    graph:
        The tagged tree.
    processes:
        The process automata of the system (crash status is read off
        their ``(failed, core)`` states).
    channels:
        The channel automata.
    environment:
        The environment automaton — a composition of per-location
        automata carrying a ``location`` attribute (e.g.
        :class:`~repro.system.environment.ConsensusEnvironment`) — or
        ``None`` if the system has no environment.
    """

    def __init__(
        self,
        graph: TaggedTreeGraph,
        processes: Sequence[ProcessAutomaton],
        channels: Sequence[ChannelAutomaton],
        environment: Optional[Composition] = None,
    ):
        self.graph = graph
        self.composition: Composition = graph.composition
        self.processes = list(processes)
        self.channels = list(channels)
        self.environment = environment

    # -- State accessors ---------------------------------------------------

    def _process_state(self, vertex: TreeVertex, process):
        return self.composition.component_state(vertex.config, process)

    def crashed_at(self, vertex: TreeVertex, location: int) -> bool:
        for process in self.processes:
            if process.location == location:
                failed, _core = self._process_state(vertex, process)
                return failed
        raise KeyError(f"no process at location {location}")

    # -- The relation -----------------------------------------------------------

    def similar_modulo(
        self, i: int, v1: TreeVertex, v2: TreeVertex
    ) -> bool:
        """Whether ``v1 ~_i v2`` (note: not symmetric — condition 4)."""
        # 1. crash_i occurred in both.
        if not (self.crashed_at(v1, i) and self.crashed_at(v2, i)):
            return False
        # 2. process states agree away from i.
        for process in self.processes:
            if process.location == i:
                continue
            if self._process_state(v1, process) != self._process_state(
                v2, process
            ):
                return False
        # 3 & 4. channel states.
        for channel in self.channels:
            q1 = self.composition.component_state(v1.config, channel)
            q2 = self.composition.component_state(v2.config, channel)
            if channel.source == i:
                if not _is_prefix(tuple(q1), tuple(q2)):
                    return False
            elif channel.destination == i:
                continue  # unconstrained: only crashed i could read it
            elif q1 != q2:
                return False
        # 5. environment states away from i.
        if self.environment is not None:
            env_state1 = self.composition.component_state(
                v1.config, self.environment
            )
            env_state2 = self.composition.component_state(
                v2.config, self.environment
            )
            for part in self.environment.components:
                if getattr(part, "location", None) == i:
                    continue
                if self.environment.component_state(
                    env_state1, part
                ) != self.environment.component_state(env_state2, part):
                    return False
        # 6. FD tags.
        return v1.fd_index == v2.fd_index


@dataclass
class Lemma39Report:
    """Outcome of exhaustively checking Lemma 39 on sampled pairs."""

    pairs_checked: int
    child_checks: int
    violations: List[Tuple[TreeVertex, TreeVertex, str]]

    @property
    def holds(self) -> bool:
        return self.pairs_checked > 0 and not self.violations


def verify_lemma39(
    checker: SimilarityChecker,
    i: int,
    max_pairs: int = 2000,
) -> Lemma39Report:
    """Check Lemma 39 on a concrete tree: for every sampled pair
    ``N ~_i N'`` and every label l, either ``N^l ~_i N'`` (bottom edge) or
    ``N^l ~_i N'^l``.
    """
    graph = checker.graph
    vertices = [
        v for v in graph.vertices() if checker.crashed_at(v, i)
    ]
    violations: List[Tuple[TreeVertex, TreeVertex, str]] = []
    pairs = 0
    child_checks = 0
    for v1 in vertices:
        for v2 in vertices:
            if pairs >= max_pairs:
                return Lemma39Report(pairs, child_checks, violations)
            if not checker.similar_modulo(i, v1, v2):
                continue
            pairs += 1
            for label in graph.labels:
                _a1, c1 = graph.child(v1, label)
                _a2, c2 = graph.child(v2, label)
                child_checks += 1
                if not (
                    checker.similar_modulo(i, c1, v2)
                    or checker.similar_modulo(i, c1, c2)
                ):
                    violations.append((v1, v2, label))
    return Lemma39Report(pairs, child_checks, violations)
