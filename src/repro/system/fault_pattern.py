"""Fault patterns: which locations crash, and when.

The paper's crash automaton (Section 4.4) may emit any sequence over the
crash actions; in a simulation the adversary's choice is a concrete plan.
A :class:`FaultPattern` maps each faulty location to the global step at
which its crash event fires, and converts itself into scheduler
:class:`~repro.ioa.scheduler.Injection` objects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.scheduler import Injection

CRASH = "crash"


def crash_action(location: int) -> Action:
    """The action ``crash_i`` (an element of the paper's set I-hat)."""
    return Action(CRASH, location)


def is_crash(action: Action) -> bool:
    """Whether an action is a crash event."""
    return action.name == CRASH


@dataclass(frozen=True)
class FaultPattern:
    """A crash plan: location -> global step of its crash event.

    Examples
    --------
    >>> fp = FaultPattern({2: 10}, locations=(0, 1, 2))
    >>> fp.faulty
    frozenset({2})
    >>> sorted(fp.live)
    [0, 1]
    """

    crashes: Mapping[int, int] = field(default_factory=dict)
    locations: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", dict(self.crashes))
        unknown = set(self.crashes) - set(self.locations)
        if self.locations and unknown:
            raise ValueError(
                f"crash plan mentions unknown locations: {sorted(unknown)}"
            )

    @property
    def faulty(self) -> FrozenSet[int]:
        """Locations that crash under this pattern."""
        return frozenset(self.crashes)

    @property
    def live(self) -> FrozenSet[int]:
        """Locations that never crash under this pattern."""
        return frozenset(self.locations) - self.faulty

    @property
    def num_faulty(self) -> int:
        return len(self.crashes)

    def injections(self) -> List[Injection]:
        """Scheduler injections realizing this pattern."""
        return [
            Injection(step, crash_action(location))
            for location, step in sorted(self.crashes.items())
        ]

    def crash_step(self, location: int):
        """The step ``location`` crashes at, or None if it is live."""
        return self.crashes.get(location)

    @staticmethod
    def crash_free(locations: Sequence[int]) -> "FaultPattern":
        """The failure-free pattern over the given locations."""
        return FaultPattern({}, tuple(locations))

    @staticmethod
    def random(
        locations: Sequence[int],
        max_faulty: int,
        horizon: int,
        seed: int = 0,
        exactly: bool = False,
    ) -> "FaultPattern":
        """A random pattern crashing at most (or exactly) ``max_faulty``
        locations at uniformly random steps in ``[0, horizon)``."""
        if max_faulty > len(locations):
            raise ValueError("cannot crash more locations than exist")
        rng = random.Random(seed)
        count = max_faulty if exactly else rng.randint(0, max_faulty)
        victims = rng.sample(list(locations), count)
        return FaultPattern(
            {v: rng.randrange(horizon) for v in victims}, tuple(locations)
        )

    @staticmethod
    def enumerate_single_crash(
        locations: Sequence[int], steps: Iterable[int]
    ) -> List["FaultPattern"]:
        """Every pattern crashing exactly one location at one of ``steps``."""
        return [
            FaultPattern({loc: step}, tuple(locations))
            for loc in locations
            for step in steps
        ]
