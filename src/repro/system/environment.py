"""Environment automata (Sections 4.5 and 9.2).

The environment models the external world.  For consensus, the paper fixes
the specific well-formed environment E_C of Algorithm 4: one automaton
E_{C,i} per location with output actions ``propose(0)_i`` / ``propose(1)_i``
(each in its own task), inputs ``decide(v)_i`` and ``crash_i``, where any
propose or crash event permanently disables further proposals.

Two variants are provided:

* :class:`ConsensusEnvironmentLocation` — the faithful Algorithm 4
  automaton: *both* propose values stay enabled until one fires, so the
  scheduler (or the tagged tree of Section 8) resolves the choice.  This is
  the environment used in the valence/hook analysis, where nodes N_all0 and
  N_all1 must both exist (Proposition 51).
* :class:`ScriptedConsensusEnvironment` — a well-formed environment whose
  location i proposes a fixed value; convenient for consensus experiments
  with chosen inputs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton, State
from repro.ioa.composition import Composition
from repro.ioa.signature import FiniteActionSet, Signature
from repro.system.fault_pattern import CRASH, crash_action

PROPOSE = "propose"
DECIDE = "decide"


def propose_action(location: int, value: int) -> Action:
    """The action ``propose(v)_i``."""
    return Action(PROPOSE, location, (value,))


def decide_action(location: int, value: int) -> Action:
    """The action ``decide(v)_i``."""
    return Action(DECIDE, location, (value,))


class ConsensusEnvironmentLocation(Automaton):
    """Algorithm 4: the automaton E_{C,i}.

    State: ``stop`` (bool).  Tasks ``env0`` = {propose(0)_i} and ``env1`` =
    {propose(1)_i}; each propose sets ``stop``; crash sets ``stop``;
    decide inputs are absorbed.
    """

    def __init__(self, location: int, values: Tuple[int, ...] = (0, 1)):
        super().__init__(f"env[{location}]")
        self.location = location
        self.values = values
        self._signature = Signature(
            inputs=FiniteActionSet(
                (crash_action(location),)
                + tuple(decide_action(location, v) for v in values)
            ),
            outputs=FiniteActionSet(
                tuple(propose_action(location, v) for v in values)
            ),
        )

    @property
    def signature(self) -> Signature:
        return self._signature

    def initial_state(self) -> State:
        return False  # stop flag

    def apply(self, state: State, action: Action) -> State:
        if action.name in (PROPOSE, CRASH):
            return True
        return state  # decide inputs: no effect

    def enabled_locally(self, state: State) -> Iterable[Action]:
        if not state:
            for v in self.values:
                yield propose_action(self.location, v)

    def tasks(self) -> Sequence[str]:
        return tuple(f"env{v}" for v in self.values)

    def task_of(self, action: Action) -> Optional[str]:
        if action.name == PROPOSE:
            return f"env{action.payload[0]}"
        return None

    def enabled_in_task(self, state: State, task: str) -> Tuple[Action, ...]:
        if state:
            return ()
        for v in self.values:
            if task == f"env{v}":
                return (propose_action(self.location, v),)
        return ()


class ConsensusEnvironment(Composition):
    """The environment E_C: the composition of E_{C,i} for all i (§9.2)."""

    def __init__(self, locations: Sequence[int]):
        super().__init__(
            [ConsensusEnvironmentLocation(i) for i in locations],
            name="envC",
        )
        self.locations = tuple(locations)


class _ScriptedLocation(ConsensusEnvironmentLocation):
    """E_{C,i} restricted to proposing one fixed value.

    Still well-formed: at most one proposal, none after a crash, exactly
    one at live locations in fair traces.
    """

    def __init__(self, location: int, value: int):
        super().__init__(location, values=(value,))
        self.value = value

    def enabled_locally(self, state: State) -> Iterable[Action]:
        if not state:
            yield propose_action(self.location, self.value)

    def enabled_in_task(self, state: State, task: str) -> Tuple[Action, ...]:
        if state or task != f"env{self.value}":
            return ()
        return (propose_action(self.location, self.value),)


class ScriptedConsensusEnvironment(Composition):
    """A well-formed consensus environment proposing fixed values.

    Parameters
    ----------
    proposals:
        Mapping from location to the value it proposes.
    """

    def __init__(self, proposals: Mapping[int, int]):
        super().__init__(
            [_ScriptedLocation(i, v) for i, v in sorted(proposals.items())],
            name="envScripted",
        )
        self.proposals = dict(proposals)
        self.locations = tuple(sorted(proposals))
