"""The asynchronous distributed system model (paper Section 4).

A system is the composition of: process automata (one per location in Pi),
reliable FIFO channel automata (one per ordered pair of locations), the
crash automaton, an environment automaton, and possibly a failure-detector
automaton.  This package provides each of those components plus the
assembly helper that wires them together as in Figure 1.
"""

from repro.system.fault_pattern import FaultPattern, crash_action, is_crash
from repro.system.crash import CrashAutomaton
from repro.system.channel import (
    ChannelAutomaton,
    make_channels,
    receive_action,
    send_action,
)
from repro.system.process import DistributedAlgorithm, ProcessAutomaton
from repro.system.environment import (
    ConsensusEnvironment,
    ConsensusEnvironmentLocation,
    ScriptedConsensusEnvironment,
    decide_action,
    propose_action,
)
from repro.system.network import SystemBuilder, assemble_system

__all__ = [
    "FaultPattern",
    "crash_action",
    "is_crash",
    "CrashAutomaton",
    "ChannelAutomaton",
    "make_channels",
    "receive_action",
    "send_action",
    "ProcessAutomaton",
    "DistributedAlgorithm",
    "ConsensusEnvironment",
    "ConsensusEnvironmentLocation",
    "ScriptedConsensusEnvironment",
    "propose_action",
    "decide_action",
    "SystemBuilder",
    "assemble_system",
]
