"""The crash automaton (Section 4.4).

The crash automaton has output actions ``{crash_i | i in Pi}`` and no input
actions; *every* sequence over those actions is one of its fair traces.  To
realize that specification with task fairness, its crash actions belong to
no task: the fairness definition then imposes no obligation, and the
scheduler fires crash events only through injections (a
:class:`~repro.system.fault_pattern.FaultPattern` plan).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton, State
from repro.ioa.signature import FiniteActionSet, Signature
from repro.system.fault_pattern import crash_action


class CrashAutomaton(Automaton):
    """Emits ``crash_i`` events; the adversary (scheduler plan) decides when.

    State: the frozenset of locations crashed so far (bookkeeping only —
    crash actions stay enabled forever, since any sequence over I-hat is a
    trace; repeating a crash event is allowed and idempotent).
    """

    def __init__(self, locations: Sequence[int], name: str = "crash"):
        super().__init__(name)
        self.locations: Tuple[int, ...] = tuple(locations)
        self._actions = tuple(crash_action(i) for i in self.locations)
        self._signature = Signature(outputs=FiniteActionSet(self._actions))

    @property
    def signature(self) -> Signature:
        return self._signature

    def initial_state(self) -> State:
        return frozenset()

    def apply(self, state: State, action: Action) -> State:
        return state | {action.location}

    def enabled(self, state: State, action: Action) -> bool:
        return action in self._signature.outputs

    def enabled_locally(self, state: State) -> Iterable[Action]:
        return self._actions

    def tasks(self) -> Sequence[str]:
        # No tasks: crash actions carry no fairness obligation, which is
        # what makes every sequence over I-hat a fair trace.
        return ()

    def task_of(self, action: Action) -> Optional[str]:
        return None
