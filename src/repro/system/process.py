"""Process automata (Section 4.2).

A process automaton ``proc(i)`` lives at location i; all its actions occur
at i.  It receives ``crash_i`` and ``receive(m, j)_i`` as inputs, emits
``send(m, j)_i`` as outputs, and may have further external actions (failure
detector outputs as inputs, problem actions such as ``propose``/``decide``).
When ``crash_i`` occurs, all locally controlled actions are permanently
disabled.

:class:`ProcessAutomaton` factors out the crash-disabling wrapper: concrete
algorithms implement the ``core_*`` hooks over their own state and never
deal with crashes explicitly.  Process states are ``(failed, core_state)``
pairs.  After a crash, input actions are still absorbed (inputs are enabled
in every state) but leave the core state untouched, so a crashed process is
inert as the model requires.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Dict, Hashable, Iterable, Mapping, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton, State
from repro.ioa.signature import (
    ActionSet,
    EmptyActionSet,
    FiniteActionSet,
    PredicateActionSet,
    Signature,
    UnionActionSet,
)
from repro.system.channel import RECEIVE, SEND, send_action
from repro.system.fault_pattern import CRASH, crash_action


class ProcessAutomaton(Automaton):
    """Base class for located, crash-disabled process automata.

    Subclasses implement:

    * :meth:`core_initial` — the algorithm's initial state (immutable);
    * :meth:`core_apply` — the transition function over core states;
    * :meth:`core_enabled` — enabled locally controlled actions;

    and may override :meth:`core_inputs`, :meth:`core_outputs`,
    :meth:`core_internals` to extend the signature, and
    :meth:`tasks`/:meth:`task_of` for a finer task structure.
    """

    #: Subclasses that never exchange messages (detector relays, FD
    #: wrappers) set this to False so their signature omits the
    #: send/receive families — otherwise two process automata at the same
    #: location would both claim the ``send(*,*)_i`` outputs and could not
    #: be composed into one system.
    uses_channels = True

    def __init__(self, location: int, name: str = ""):
        super().__init__(name or f"proc[{location}]")
        self.location = location
        input_parts = [FiniteActionSet((crash_action(location),))]
        output_parts = []
        if self.uses_channels:
            input_parts.append(
                PredicateActionSet(
                    lambda a: a.name == RECEIVE and a.location == location,
                    f"receive(*,*)_{location}",
                )
            )
            output_parts.append(
                PredicateActionSet(
                    lambda a: (
                        a.name == SEND
                        and a.location == location
                        and self.owns_message(a.payload[0])
                    ),
                    f"send(*,*)_{location}",
                )
            )
        input_parts.append(self.core_inputs())
        output_parts.append(self.core_outputs())
        self._signature = Signature(
            inputs=UnionActionSet(input_parts),
            outputs=UnionActionSet(output_parts),
            internals=self.core_internals(),
        )

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------

    @abstractmethod
    def core_initial(self) -> State:
        """The algorithm's initial core state."""

    @abstractmethod
    def core_apply(self, core: State, action: Action) -> State:
        """Apply an action (input or locally controlled) to the core."""

    @abstractmethod
    def core_enabled(self, core: State) -> Iterable[Action]:
        """Locally controlled actions enabled in ``core``."""

    def owns_message(self, message: Hashable) -> bool:
        """Whether this process claims ``send`` actions carrying
        ``message``.

        When two message-passing process automata share a location (a
        protocol layered over a consensus black box, say), each must own
        a disjoint slice of the send vocabulary or the composition's
        one-output-owner rule is violated.  Override to filter by the
        protocol's message tag; the default owns everything.
        """
        return True

    def core_inputs(self) -> ActionSet:
        """Additional input actions (besides crash and receive)."""
        return EmptyActionSet()

    def core_outputs(self) -> ActionSet:
        """Additional output actions (besides send)."""
        return EmptyActionSet()

    def core_internals(self) -> ActionSet:
        """Internal actions."""
        return EmptyActionSet()

    # ------------------------------------------------------------------
    # Automaton interface
    # ------------------------------------------------------------------

    @property
    def signature(self) -> Signature:
        return self._signature

    def initial_state(self) -> State:
        return (False, self.core_initial())

    def apply(self, state: State, action: Action) -> State:
        failed, core = state
        if action.name == CRASH and action.location == self.location:
            return (True, core)
        if failed:
            # Crashed: inputs are absorbed, locally controlled actions are
            # disabled (and hence never applied by a correct scheduler).
            return state
        return (False, self.core_apply(core, action))

    def enabled_locally(self, state: State) -> Iterable[Action]:
        failed, core = state
        if failed:
            return ()
        return self.core_enabled(core)

    # ------------------------------------------------------------------
    # Helpers for algorithm code
    # ------------------------------------------------------------------

    def send(self, message: Hashable, destination: int) -> Action:
        """The ``send(message, destination)`` action of this process."""
        return send_action(self.location, message, destination)

    @staticmethod
    def is_receive(action: Action) -> bool:
        return action.name == RECEIVE

    @staticmethod
    def received_message(action: Action) -> Tuple[Hashable, int]:
        """Unpack a receive action into (message, sender)."""
        return action.payload[0], action.payload[1]


class DistributedAlgorithm:
    """A collection of process automata, one per location (Section 4.2).

    Iterable; indexable by location.
    """

    def __init__(self, processes: Mapping[int, ProcessAutomaton]):
        self._processes: Dict[int, ProcessAutomaton] = dict(processes)
        for location, proc in self._processes.items():
            if proc.location != location:
                raise ValueError(
                    f"process {proc.name} has location {proc.location}, "
                    f"registered at {location}"
                )

    @property
    def locations(self) -> Tuple[int, ...]:
        return tuple(sorted(self._processes))

    def __getitem__(self, location: int) -> ProcessAutomaton:
        return self._processes[location]

    def __iter__(self):
        return iter(self._processes.values())

    def __len__(self) -> int:
        return len(self._processes)

    def automata(self) -> Sequence[ProcessAutomaton]:
        return [self._processes[i] for i in self.locations]
