"""Reliable FIFO channel automata (Section 4.3).

For every ordered pair (i, j) of distinct locations the system contains a
channel automaton ``C_{i,j}`` carrying messages from the process at i to
the process at j.  Its state is a FIFO queue; ``send(m, j)_i`` enqueues m,
and when m is at the head, ``receive(m, i)_j`` is enabled and dequeues it.
The automaton has a single task and is deterministic (Section 2.5).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton, State
from repro.ioa.signature import PredicateActionSet, Signature

SEND = "send"
RECEIVE = "receive"


def send_action(sender: int, message: Hashable, destination: int) -> Action:
    """The action ``send(m, j)_i``: located at the sender."""
    return Action(SEND, sender, (message, destination))


def receive_action(destination: int, message: Hashable, sender: int) -> Action:
    """The action ``receive(m, i)_j``: located at the receiver."""
    return Action(RECEIVE, destination, (message, sender))


class ChannelAutomaton(Automaton):
    """The reliable FIFO channel ``C_{i,j}``.

    State: a tuple of messages in transit, head first.
    """

    def __init__(self, source: int, destination: int, instrument=None):
        if source == destination:
            raise ValueError("channels connect distinct locations")
        super().__init__(f"chan[{source}->{destination}]")
        self.source = source
        self.destination = destination
        # Optional observability (see repro.obs.metrics): when attached,
        # every apply() records the post-step queue depth.  ``instrument=``
        # is the unified convention; only its metrics half applies here.
        self._metrics = None
        if instrument is not None:
            from repro.obs.instrument import coerce_instrument

            self._metrics = coerce_instrument(instrument).metrics
        self._signature = Signature(
            inputs=PredicateActionSet(
                lambda a: (
                    a.name == SEND
                    and a.location == source
                    and len(a.payload) == 2
                    and a.payload[1] == destination
                ),
                f"send(*, {destination})_{source}",
            ),
            outputs=PredicateActionSet(
                lambda a: (
                    a.name == RECEIVE
                    and a.location == destination
                    and len(a.payload) == 2
                    and a.payload[1] == source
                ),
                f"receive(*, {source})_{destination}",
            ),
        )

    @property
    def signature(self) -> Signature:
        return self._signature

    def initial_state(self) -> State:
        return ()

    def transit_view(self, state: State) -> Tuple:
        """The messages in transit, head first, as a plain tuple.

        The reliable channel's state *is* that tuple; faulty channel
        subclasses carry bookkeeping (delays, send counters) alongside
        it and override this to project it out.  Quiescence checks and
        :func:`messages_in_transit` go through this view so they work
        for any channel automaton.
        """
        return state

    def attach_metrics(self, registry) -> "ChannelAutomaton":
        """Record ``channel.depth.<name>`` (post-step queue depth) and
        ``channel.sends.<name>`` into ``registry``; returns self."""
        self._metrics = registry
        return self

    def detach_metrics(self) -> "ChannelAutomaton":
        self._metrics = None
        return self

    def apply(self, state: State, action: Action) -> State:
        if action.name == SEND:
            message = action.payload[0]
            next_state = state + (message,)
            if self._metrics is not None:
                self._metrics.counter(f"channel.sends.{self.name}").inc()
                self._metrics.histogram(
                    f"channel.depth.{self.name}"
                ).observe(len(next_state))
            return next_state
        if action.name == RECEIVE:
            if not state or state[0] != action.payload[0]:
                raise ValueError(
                    f"receive of {action.payload[0]!r} not enabled; "
                    f"queue head is {state[0]!r}"
                    if state
                    else "receive on empty channel"
                )
            next_state = state[1:]
            if self._metrics is not None:
                self._metrics.histogram(
                    f"channel.depth.{self.name}"
                ).observe(len(next_state))
            return next_state
        raise ValueError(f"channel {self.name} cannot perform {action}")

    def enabled_locally(self, state: State) -> Iterable[Action]:
        if state:
            yield receive_action(self.destination, state[0], self.source)

    def enabled(self, state: State, action: Action) -> bool:
        if self._signature.is_input(action):
            return True
        return (
            action.name == RECEIVE
            and bool(state)
            and action in self._signature.outputs
            and action.payload[0] == state[0]
        )


def make_channels(locations: Sequence[int]) -> List[ChannelAutomaton]:
    """One channel automaton per ordered pair of distinct locations."""
    return [
        ChannelAutomaton(i, j)
        for i in locations
        for j in locations
        if i != j
    ]


def messages_in_transit(
    channels: Iterable[ChannelAutomaton], composition, state
) -> Dict[Tuple[int, int], Tuple]:
    """Map (source, destination) -> queue contents, for assertions about
    quiescence (Lemma 23 requires no messages in transit).

    Goes through :meth:`ChannelAutomaton.transit_view`, so the value is
    always a plain tuple of messages — for reliable and faulty channels
    alike (a faulty channel's raw state carries extra bookkeeping)."""
    return {
        (c.source, c.destination): c.transit_view(
            composition.component_state(state, c)
        )
        for c in channels
    }
