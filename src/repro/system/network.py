"""System assembly (Section 4.1, Figure 1).

Wires together process automata, the reliable FIFO channels, the crash
automaton, and optional failure-detector and environment automata into a
single composition, and keeps handles on the pieces so experiments can
project states and traces per component.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton, State
from repro.ioa.composition import Composition
from repro.ioa.executions import Execution, Trace
from repro.ioa.scheduler import Injection, Scheduler, SchedulerPolicy
from repro.system.channel import ChannelAutomaton, make_channels
from repro.system.crash import CrashAutomaton
from repro.system.fault_pattern import FaultPattern
from repro.system.process import DistributedAlgorithm


class SystemBuilder:
    """Builds the composition of Figure 1 step by step.

    Examples
    --------
    >>> from repro.detectors.omega import OmegaAutomaton
    >>> from repro.algorithms.consensus_omega import omega_consensus_algorithm
    >>> locations = (0, 1, 2)
    >>> builder = (SystemBuilder(locations)
    ...            .with_algorithm(omega_consensus_algorithm(locations))
    ...            .with_failure_detector(OmegaAutomaton(locations)))
    >>> system = builder.build()
    """

    def __init__(self, locations: Sequence[int]):
        self.locations: Tuple[int, ...] = tuple(locations)
        if len(set(self.locations)) != len(self.locations):
            raise ValueError("locations must be distinct")
        self.algorithm: Optional[DistributedAlgorithm] = None
        self.failure_detector: Optional[Automaton] = None
        self.environment: Optional[Automaton] = None
        self.extra: List[Automaton] = []
        self.include_channels = True
        self.include_crash = True
        self.observer = None
        self.metrics = None
        self.profiler = None
        self.use_enabled_cache: Optional[bool] = None
        self.fault_plan = None

    # -- Configuration -----------------------------------------------------

    def with_algorithm(self, algorithm: DistributedAlgorithm) -> "SystemBuilder":
        if tuple(algorithm.locations) != self.locations:
            raise ValueError(
                f"algorithm locations {algorithm.locations} do not match "
                f"system locations {self.locations}"
            )
        self.algorithm = algorithm
        return self

    def with_failure_detector(self, fd: Automaton) -> "SystemBuilder":
        self.failure_detector = fd
        return self

    def with_environment(self, env: Automaton) -> "SystemBuilder":
        self.environment = env
        return self

    def with_extra(self, automaton: Automaton) -> "SystemBuilder":
        self.extra.append(automaton)
        return self

    def without_channels(self) -> "SystemBuilder":
        self.include_channels = False
        return self

    def without_crash_automaton(self) -> "SystemBuilder":
        self.include_crash = False
        return self

    def with_fault_plan(self, plan) -> "SystemBuilder":
        """Inject the faults of a :class:`~repro.faults.plan.FaultPlan`.

        Channel faults replace the reliable channels with seeded
        :class:`~repro.faults.channels.ChaosChannel` automata; crash
        rules attach a :class:`~repro.faults.adversary.CrashRuleController`
        to every run of the built system.  A plan with no channel faults
        keeps the reliable channel automata — the zero-fault path is
        byte-identical to an unfaulted system, not merely equivalent —
        and a fully inert plan is a provable no-op.

        The plan must be bound (``plan.is_bound``) unless it is inert;
        :class:`~repro.runner.spec.ExperimentSpec` binds unbound plans
        to the run seed before building.
        """
        if plan is not None and not plan.is_bound and not plan.is_inert:
            raise ValueError(
                "fault plan is unbound; bind it to a seed first "
                "(plan.bound(seed)) or attach it via ExperimentSpec, "
                "which binds it to the run seed"
            )
        self.fault_plan = plan
        return self

    def without_enabled_cache(self) -> "SystemBuilder":
        """Build the composition with the incremental enabled/dispatch
        caches off (brute-force predicate scans every step).  The caches
        are semantics-preserving — this switch exists for A/B timing and
        for the CI perf guard's oracle runs."""
        self.use_enabled_cache = False
        return self

    def with_instrumentation(self, instrument) -> "SystemBuilder":
        """Attach instrumentation (the unified ``instrument=`` convention,
        :mod:`repro.obs.instrument`): the observer half is notified by
        every run of the built system unless overridden per-run; the
        metrics half is recorded into by the composition and channels;
        the profiler half routes every run through the scheduler's
        phase-accounted loop."""
        from repro.obs.instrument import coerce_instrument

        bundle = coerce_instrument(instrument)
        if bundle.observer is not None:
            self.observer = bundle.observer
        if bundle.metrics is not None:
            self.metrics = bundle.metrics
        if bundle.profiler is not None:
            self.profiler = bundle.profiler
        return self

    # -- Assembly ------------------------------------------------------------

    def build(self) -> "System":
        components: List[Automaton] = []
        channels: List[ChannelAutomaton] = []
        crash: Optional[CrashAutomaton] = None
        plan = self.fault_plan
        if self.algorithm is not None:
            components.extend(self.algorithm.automata())
        if self.include_channels:
            if plan is not None and not plan.channels_inert:
                from repro.faults.channels import make_faulty_channels

                channels = make_faulty_channels(self.locations, plan)
            else:
                channels = make_channels(self.locations)
            components.extend(channels)
        if self.include_crash:
            crash = CrashAutomaton(self.locations)
            components.append(crash)
        if self.failure_detector is not None:
            components.append(self.failure_detector)
        if self.environment is not None:
            components.append(self.environment)
        components.extend(self.extra)
        composition = Composition(
            components,
            name="system",
            use_enabled_cache=self.use_enabled_cache,
        )
        if self.metrics is not None:
            composition.attach_metrics(self.metrics)
            for channel in channels:
                channel.attach_metrics(self.metrics)
        return System(
            composition=composition,
            locations=self.locations,
            algorithm=self.algorithm,
            channels=channels,
            crash=crash,
            failure_detector=self.failure_detector,
            environment=self.environment,
            observer=self.observer,
            metrics=self.metrics,
            profiler=self.profiler,
            fault_plan=plan,
        )


class System:
    """An assembled system: the composition plus handles on its parts."""

    def __init__(
        self,
        composition: Composition,
        locations: Tuple[int, ...],
        algorithm: Optional[DistributedAlgorithm],
        channels: List[ChannelAutomaton],
        crash: Optional[CrashAutomaton],
        failure_detector: Optional[Automaton],
        environment: Optional[Automaton],
        observer=None,
        metrics=None,
        profiler=None,
        fault_plan=None,
    ):
        self.composition = composition
        self.locations = locations
        self.algorithm = algorithm
        self.channels = channels
        self.crash = crash
        self.failure_detector = failure_detector
        self.environment = environment
        self.observer = observer
        self.metrics = metrics
        self.profiler = profiler
        self.fault_plan = fault_plan
        #: The crash-rule controller of the most recent run (None when
        #: the attached plan has no crash rules); exposes ``.fired``.
        self.crash_controller = None

    # -- Running ---------------------------------------------------------------

    def run(
        self,
        max_steps: int,
        fault_pattern: Optional[FaultPattern] = None,
        policy: Optional[SchedulerPolicy] = None,
        stop_when: Optional[Callable[[State, int], bool]] = None,
        extra_injections: Iterable[Injection] = (),
        observer=None,
        instrument=None,
        compiled: Optional[bool] = None,
    ) -> Execution:
        """Run the system under a fault pattern and scheduling policy.

        ``observer`` overrides the builder-attached observer for this run
        only; pass neither and the run is entirely uninstrumented
        (unless the attached fault plan has crash rules, whose
        controller rides the observer slot).  ``instrument`` attaches
        run-scoped instrumentation on top: its halves override the
        builder-attached observer/metrics/profiler for this run only —
        the seam the compiled engine uses, since a compiled system is
        built once (uninstrumented) and instrumented per run.
        ``compiled`` routes the run through the compiled core
        (:mod:`repro.compiled`); ``None`` defers to the process default.
        """
        injections: List[Injection] = list(extra_injections)
        if fault_pattern is not None:
            injections.extend(fault_pattern.injections())
        run_metrics = self.metrics
        run_profiler = self.profiler
        run_observer = self.observer if observer is None else observer
        if instrument is not None:
            from repro.obs.instrument import coerce_instrument

            bundle = coerce_instrument(instrument)
            if bundle.observer is not None and observer is None:
                run_observer = bundle.observer
            if bundle.metrics is not None:
                run_metrics = bundle.metrics
            if bundle.profiler is not None:
                run_profiler = bundle.profiler
        self.crash_controller = None
        if self.fault_plan is not None and self.fault_plan.crash_rules:
            from repro.faults.adversary import CrashRuleController
            from repro.obs.trace import MultiObserver

            controller = CrashRuleController(
                self.fault_plan.crash_rules,
                fd_output_name=getattr(
                    self.failure_detector, "output_name", None
                ),
            )
            self.crash_controller = controller
            policy = controller.wrap(policy)
            run_observer = (
                controller
                if run_observer is None
                else MultiObserver(controller, run_observer)
            )
        scheduler = Scheduler(
            policy,
            instrument=(run_observer, run_metrics, run_profiler),
            compiled=compiled,
        )
        return scheduler.run(
            self.composition,
            max_steps=max_steps,
            injections=injections,
            stop_when=stop_when,
        )

    # -- State accessors ---------------------------------------------------------

    def process_state(self, state: State, location: int) -> State:
        """The (failed, core) state of the process at ``location``."""
        if self.algorithm is None:
            raise ValueError("system has no algorithm")
        return self.composition.component_state(state, self.algorithm[location])

    def channel_state(self, state: State, source: int, destination: int):
        for channel in self.channels:
            if channel.source == source and channel.destination == destination:
                return self.composition.component_state(state, channel)
        raise KeyError(f"no channel {source}->{destination}")

    def channels_empty(self, state: State) -> bool:
        """Whether no messages are in transit (quiescence, Lemma 23).

        Judged through :meth:`ChannelAutomaton.transit_view` — a faulty
        channel's raw state is a non-empty structure even when no
        message is queued, so raw truthiness would be wrong there.
        """
        return all(
            not channel.transit_view(
                self.composition.component_state(state, channel)
            )
            for channel in self.channels
        )

    def crashed(self, state: State) -> frozenset:
        """Locations crashed so far in ``state``."""
        if self.crash is None:
            return frozenset()
        return self.composition.component_state(state, self.crash)

    # -- Trace accessors -----------------------------------------------------------

    def trace(self, execution: Execution) -> Trace:
        return execution.trace(self.composition)


def assemble_system(
    locations: Sequence[int],
    algorithm: Optional[DistributedAlgorithm] = None,
    failure_detector: Optional[Automaton] = None,
    environment: Optional[Automaton] = None,
) -> System:
    """One-call assembly of the standard Figure 1 system."""
    builder = SystemBuilder(locations)
    if algorithm is not None:
        builder.with_algorithm(algorithm)
    if failure_detector is not None:
        builder.with_failure_detector(failure_detector)
    if environment is not None:
        builder.with_environment(environment)
    return builder.build()
