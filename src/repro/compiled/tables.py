"""The composition-time compiler: automata lowered to flat dispatch tables.

:class:`CompiledAutomaton` lowers *any* automaton satisfying the module
contract (immutable hashable states, pure ``apply``) into id-indexed
tables; :class:`CompiledComposition` specializes the lowering for
:class:`~repro.ioa.composition.Composition`, interning state *pieces*
per component so a step re-hashes only the pieces the fired action
actually replaced — the same invalidation insight as PR 3's
per-component enabled cache, now paying integer-tuple hashes instead of
nested-state hashes.

The tables, all dense lists indexed by action id / state id:

================  ==========================================================
action id         ``-> Action`` (canonical first-seen object), owner
                  component index, participant index tuple, task index,
                  chan-tick flag — the flattened form of
                  ``Composition._dispatch`` + ``task_of``
state/config id   ``-> state`` (materialized canonical value) and the
                  *enabled snapshot*: per task index, the enabled action
                  ids sorted in Action order (so ``aids[0]`` is the
                  round-robin policy's ``min(enabled)`` and the tuple is
                  the random policy's ``sorted(enabled)``)
(state, action)   ``-> state id`` — the memoized transition relation
                  (the apply thunk over interned ids)
================  ==========================================================

First sightings fall back to the interpreted implementations
(``signature`` predicate scans via ``Composition._dispatch``, component
``enabled_by_task``, component ``apply``), so infinite predicate-based
signatures keep working and the interpreted semantics remain the single
source of truth; everything after the first sighting is list indexing
and int-keyed dict probes.

``CompiledAutomaton`` *is* an :class:`~repro.ioa.automaton.Automaton`:
``initial_state``/``apply`` route through the tables (this is what the
lint contract layer's compiled subjects exercise — REPROC02/REPROC04
against the compiled apply thunks), while ``enabled_locally``/
``tasks``/``task_of`` delegate to the base automaton, whose enumeration
order is part of the observable contract.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton, State
from repro.ioa.composition import Composition
from repro.ioa.signature import Signature
from repro.compiled.intern import Interner
from repro.obs.prof import cache_counter

#: The chaos channels' delay-aging action name (kept in sync with
#: :data:`repro.ioa.scheduler.CHAN_TICK`; duplicated to keep this module
#: import-light).
_CHAN_TICK = "chan-tick"


class CompiledAutomaton(Automaton):
    """A generic automaton lowered to interned-id tables.

    Suitable for single automata (the detector-trace workload, the lint
    contract subjects); compositions get the piece-level specialization
    below.  The lowering is lazy: tables grow as states and actions are
    first sighted, because predicate-based signatures make the action
    universe non-enumerable up front.
    """

    def __init__(self, automaton: Automaton):
        super().__init__(f"compiled({automaton.name})")
        self.base = automaton
        self.task_names: Tuple[str, ...] = tuple(automaton.tasks())
        self._task_index: Dict[str, int] = {
            task: index for index, task in enumerate(self.task_names)
        }
        self._actions = Interner("action")
        #: action id -> the action fires the chaos channels' delay ager
        self._is_tick: List[bool] = []
        #: state id -> per-task-index enabled action ids (None when the
        #: task has nothing enabled), plus the dense non-empty projection
        #: in task order (what the random policy twin draws from).
        self._snap_full: List[Tuple[Optional[Tuple[int, ...]], ...]] = []
        self._snap_dense: List[Tuple[Tuple[int, ...], ...]] = []
        self._apply_memo: Dict[Tuple[int, int], int] = {}
        self._c_apply = cache_counter("compiled.apply")
        self._states = Interner("state")

    # -- Interning ----------------------------------------------------------

    def intern_config(self, state: State) -> int:
        """The id of a full automaton state, building its enabled
        snapshot on first sighting."""
        fresh = len(self._states)
        sid = self._states.intern(state)
        if sid == fresh:
            self._build_snapshot(state)
        return sid

    def intern_action(self, action: Action) -> int:
        """The id of an action, running the interpreted dispatch scan on
        first sighting (so dispatch errors surface exactly as they do on
        the interpreted path)."""
        fresh = len(self._actions)
        aid = self._actions.intern(action)
        if aid == fresh:
            self._register_action(action)
        return aid

    def _build_snapshot(self, state: State) -> None:
        full: List[Optional[Tuple[int, ...]]] = [None] * len(self.task_names)
        for task, actions in self.base.enabled_by_task(state).items():
            full[self._task_index[task]] = tuple(
                self.intern_action(a) for a in sorted(actions)
            )
        self._snap_full.append(tuple(full))
        self._snap_dense.append(tuple(a for a in full if a))

    def _register_action(self, action: Action) -> None:
        self._is_tick.append(action.name == _CHAN_TICK)

    # -- The loop-facing table API ------------------------------------------

    def state_of(self, cid: int) -> State:
        return self._states.value_of(cid)

    def action_of(self, aid: int) -> Action:
        return self._actions.value_of(aid)

    def is_tick(self, aid: int) -> bool:
        return self._is_tick[aid]

    def snapshot_full(self, cid: int) -> Tuple[Optional[Tuple[int, ...]], ...]:
        return self._snap_full[cid]

    def snapshot_dense(self, cid: int) -> Tuple[Tuple[int, ...], ...]:
        return self._snap_dense[cid]

    def apply_ids(self, cid: int, aid: int) -> int:
        """The transition relation over ids, memoized."""
        key = (cid, aid)
        nid = self._apply_memo.get(key)
        if nid is not None:
            self._c_apply.hits += 1
            return nid
        self._c_apply.misses += 1
        nid = self._transition(cid, aid)
        self._apply_memo[key] = nid
        return nid

    def _transition(self, cid: int, aid: int) -> int:
        return self.intern_config(
            self.base.apply(self.state_of(cid), self.action_of(aid))
        )

    # -- Housekeeping -------------------------------------------------------

    @property
    def num_configs(self) -> int:
        return len(self._snap_full)

    def table_sizes(self) -> Dict[str, int]:
        """Current table cardinalities (for metadata and the run ledger)."""
        return {
            "actions": len(self._actions),
            "configs": self.num_configs,
            "transitions": len(self._apply_memo),
        }

    def reset_tables(self) -> None:
        """Drop every table (safe only between runs; ids are reborn).

        The step-loop drivers call this when the config table outgrows
        :data:`repro.compiled.system.TABLE_CAP`, bounding memory on
        workloads whose state stream never repeats (chaos channels age
        a counter every tick)."""
        self._actions.clear()
        self._is_tick.clear()
        self._snap_full.clear()
        self._snap_dense.clear()
        self._apply_memo.clear()
        self._states.clear()

    # -- Automaton interface (the lint contract layer's view) ---------------

    @property
    def signature(self) -> Signature:
        return self.base.signature

    def initial_state(self) -> State:
        return self.state_of(self.intern_config(self.base.initial_state()))

    def apply(self, state: State, action: Action) -> State:
        return self.state_of(
            self.apply_ids(self.intern_config(state), self.intern_action(action))
        )

    def enabled_locally(self, state: State) -> Iterable[Action]:
        return self.base.enabled_locally(state)

    def enabled(self, state: State, action: Action) -> bool:
        return self.base.enabled(state, action)

    def tasks(self) -> Sequence[str]:
        return self.task_names

    def task_of(self, action: Action) -> Optional[str]:
        return self.base.task_of(action)


class CompiledComposition(CompiledAutomaton):
    """The piece-level lowering of a :class:`Composition`.

    A configuration is interned as the tuple of its per-component piece
    ids, so the hot path hashes small integer tuples instead of nested
    state values; a transition re-interns only the fired action's
    participant pieces.  Enabled groups are computed once per distinct
    piece (one ``enabled_by_task`` call on the owning component) and
    stitched into per-config snapshots at config interning.
    """

    def __init__(self, composition: Composition):
        if not isinstance(composition, Composition):
            raise TypeError(
                "CompiledComposition lowers Composition instances; use "
                f"CompiledAutomaton for {type(composition).__name__}"
            )
        super().__init__(composition)
        ncomp = len(composition.components)
        #: per component: piece -> piece id, and the id-indexed pieces
        self._piece_ids: List[Dict[State, int]] = [{} for _ in range(ncomp)]
        self._pieces: List[List[State]] = [[] for _ in range(ncomp)]
        #: per component, per piece id: ((task index, enabled aids), ...)
        self._piece_groups: List[List[Tuple[Tuple[int, Tuple[int, ...]], ...]]] = [
            [] for _ in range(ncomp)
        ]
        #: config = tuple of piece ids -> config id
        self._config_ids: Dict[Tuple[int, ...], int] = {}
        self._config_pids: List[Tuple[int, ...]] = []
        self._config_states: List[State] = []
        #: action id -> participant component indices
        self._action_parts: List[Tuple[int, ...]] = []
        self._c_piece = cache_counter("compiled.piece")
        self._c_config = cache_counter("compiled.config")

    # -- Interning ----------------------------------------------------------

    def intern_config(self, state: State) -> int:
        pids = tuple(
            self._intern_piece(index, piece)
            for index, piece in enumerate(state)
        )
        return self._intern_pids(pids)

    def _intern_piece(self, index: int, piece: State) -> int:
        ids = self._piece_ids[index]
        pid = ids.get(piece)
        if pid is not None:
            self._c_piece.hits += 1
            return pid
        self._c_piece.misses += 1
        pid = len(self._pieces[index])
        ids[piece] = pid
        self._pieces[index].append(piece)
        component = self.base.components[index]
        prefix = component.name + self.base.TASK_SEPARATOR
        groups = tuple(
            (
                self._task_index[prefix + local],
                tuple(self.intern_action(a) for a in sorted(actions)),
            )
            for local, actions in component.enabled_by_task(piece).items()
        )
        self._piece_groups[index].append(groups)
        return pid

    def _intern_pids(self, pids: Tuple[int, ...]) -> int:
        cid = self._config_ids.get(pids)
        if cid is not None:
            self._c_config.hits += 1
            return cid
        self._c_config.misses += 1
        cid = len(self._config_pids)
        self._config_ids[pids] = cid
        self._config_pids.append(pids)
        pieces = self._pieces
        self._config_states.append(
            tuple(pieces[k][pid] for k, pid in enumerate(pids))
        )
        full: List[Optional[Tuple[int, ...]]] = [None] * len(self.task_names)
        piece_groups = self._piece_groups
        for k, pid in enumerate(pids):
            for task_index, aids in piece_groups[k][pid]:
                full[task_index] = aids
        self._snap_full.append(tuple(full))
        self._snap_dense.append(tuple(a for a in full if a))
        return cid

    def _register_action(self, action: Action) -> None:
        # The interpreted dispatch scan is the authority: it performs the
        # lazy one-output-owner compatibility check and raises
        # CompositionError on ambiguity *before* an id is assigned, so an
        # ambiguous action keeps raising on every sighting, exactly as on
        # the interpreted path.
        _owner, participants = self.base._dispatch(action)
        self._action_parts.append(participants)
        self._is_tick.append(action.name == _CHAN_TICK)

    # -- Transitions --------------------------------------------------------

    def state_of(self, cid: int) -> State:
        return self._config_states[cid]

    def _transition(self, cid: int, aid: int) -> int:
        pids = list(self._config_pids[cid])
        action = self.action_of(aid)
        components = self.base.components
        pieces = self._pieces
        for k in self._action_parts[aid]:
            pids[k] = self._intern_piece(
                k, components[k].apply(pieces[k][pids[k]], action)
            )
        return self._intern_pids(tuple(pids))

    # -- Housekeeping -------------------------------------------------------

    def table_sizes(self) -> Dict[str, int]:
        sizes = super().table_sizes()
        sizes["pieces"] = sum(len(column) for column in self._pieces)
        return sizes

    def reset_tables(self) -> None:
        super().reset_tables()
        dropped = 0
        for index in range(len(self._pieces)):
            dropped += len(self._pieces[index])
            self._piece_ids[index].clear()
            self._pieces[index].clear()
            self._piece_groups[index].clear()
        self._c_piece.evictions += dropped
        self._c_config.evictions += len(self._config_pids)
        self._config_ids.clear()
        self._config_pids.clear()
        self._config_states.clear()
        self._action_parts.clear()


#: Per-automaton-instance core cache: the same automaton object is
#: lowered once per process, however many schedulers or tree builds
#: route through it.  Weak keys keep discarded systems collectable.
_CORE_CACHE: "weakref.WeakKeyDictionary[Automaton, CompiledAutomaton]" = (
    weakref.WeakKeyDictionary()
)


def compile_automaton(automaton: Automaton) -> CompiledAutomaton:
    """The compiled core for ``automaton`` (cached per instance)."""
    if isinstance(automaton, CompiledAutomaton):
        return automaton
    core = _CORE_CACHE.get(automaton)
    if core is None:
        core = (
            CompiledComposition(automaton)
            if isinstance(automaton, Composition)
            else CompiledAutomaton(automaton)
        )
        _CORE_CACHE[automaton] = core
    return core
