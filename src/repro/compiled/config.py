"""The process-wide compiled-execution default.

Mirrors :func:`repro.ioa.composition.set_enabled_cache_default`: one
module-level flag, an environment-variable override for subprocesses
(``REPRO_COMPILED=1``), and a setter returning the previous value so
callers can restore it in a ``try/finally``.  Every surface that can
route through the compiled core (``Scheduler``, ``System.run``,
``ExperimentSpec``, ``TaggedTreeGraph``) takes ``compiled=None`` to mean
"the process default"; an explicit ``True``/``False`` always wins.
"""

from __future__ import annotations

import os


def _env_compiled_default() -> bool:
    return os.environ.get("REPRO_COMPILED", "").lower() in ("1", "true", "yes")


_compiled_default = _env_compiled_default()


def compiled_default() -> bool:
    """The process-wide default for compiled execution."""
    return _compiled_default


def set_compiled_default(enabled: bool) -> bool:
    """Set the process-wide compiled default; returns the previous value.

    Affects runs that start afterwards with ``compiled=None`` (the
    benchmark CLIs' ``--compiled`` flag and the perf guard's
    compiled-vs-interpreted A/B use this seam).
    """
    global _compiled_default
    previous = _compiled_default
    _compiled_default = bool(enabled)
    return previous


def resolve_compiled(flag) -> bool:
    """An explicit ``compiled=`` argument, or the process default."""
    return _compiled_default if flag is None else bool(flag)
