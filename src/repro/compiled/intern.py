"""Hash-consing interner: immutable values to stable dense integer ids.

The compiled core never stores or compares automaton states directly —
it interns each first-seen value and works over the returned id.  Two
properties make this sound:

* states (and actions) are immutable, hashable values by the module
  contract of :mod:`repro.ioa.automaton`, so equality is stable;
* ids are assigned in first-sighting order, so for a fixed run they are
  a pure function of the executed steps — deterministic across
  processes and reusable across runs that sight values in the same
  order (runs of the same spec fingerprint through
  :func:`repro.compiled.system.compile_spec`).

The defining property (enforced by the hypothesis suite in
``tests/compiled/test_intern.py``)::

    intern(s1) == intern(s2)  iff  canonical(s1) == canonical(s2)

where :meth:`Interner.canonical` returns the first-seen representative
of the value's equivalence class.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List

from repro.obs.prof import cache_counter


class Interner:
    """Hash-consing of immutable values into dense integer ids.

    Probes tally into the process-global cache telemetry under
    ``compiled.intern.<name>`` (a hit is a re-sighting, a miss a freshly
    interned value), alongside the PR 3 memo counters.
    """

    __slots__ = ("_ids", "_values", "_counter")

    def __init__(self, name: str = "values"):
        self._ids: Dict[Any, int] = {}
        self._values: List[Any] = []
        self._counter = cache_counter(f"compiled.intern.{name}")

    def intern(self, value: Any) -> int:
        """The id of ``value``, assigning a fresh one on first sighting."""
        ident = self._ids.get(value)
        if ident is not None:
            self._counter.hits += 1
            return ident
        self._counter.misses += 1
        ident = len(self._values)
        self._ids[value] = ident
        self._values.append(value)
        return ident

    def canonical(self, value: Any) -> Any:
        """The first-seen representative of ``value``'s equality class."""
        return self._values[self.intern(value)]

    def value_of(self, ident: int) -> Any:
        """The canonical value interned under ``ident``."""
        return self._values[ident]

    def lookup(self, value: Any):
        """The id of ``value`` if already interned, else ``None``
        (no side effects, no telemetry)."""
        return self._ids.get(value)

    def clear(self) -> int:
        """Drop every interned value; returns the number dropped.

        Only safe between runs — ids handed out before the clear must
        not be dereferenced afterwards.  The drop is booked as
        evictions in the interner's telemetry.
        """
        dropped = len(self._values)
        self._counter.evictions += dropped
        self._ids.clear()
        self._values.clear()
        return dropped

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Any) -> bool:
        return value in self._ids

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __repr__(self) -> str:
        return f"<Interner {self._counter.name} size={len(self._values)}>"
