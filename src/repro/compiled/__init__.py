"""The compiled simulation core: interned states, flat transition tables.

The interpreted engine (:mod:`repro.ioa`) executes one scheduler step as
a cascade of Python-object work: hash every component's state piece to
probe the enabled memo, assemble a task-name-keyed snapshot dict, have
the policy walk it, copy the state tuple and re-hash the action for the
dispatch memo.  PR 3's memos made each of those steps O(1) amortized,
but the constants — nested-tuple hashing, dict churn, string keys — are
what the ROADMAP's "compiled simulation core" item targets.

This package lowers an automaton, once, into *flat tables over dense
integer ids*:

* :class:`~repro.compiled.intern.Interner` — hash-consing of states,
  state pieces and actions into stable integer ids (the id order is the
  first-sighting order, so it is deterministic for a fixed run);
* :class:`~repro.compiled.tables.CompiledAutomaton` /
  :class:`~repro.compiled.tables.CompiledComposition` — the compiler:
  signature dispatch, task membership, per-state enabled groups and the
  transition relation become id-indexed lists and int-keyed memos,
  reusing the PR 3 seams (``Composition._dispatch``, per-component
  ``enabled_by_task``) as the authoritative fallback on first sighting;
* :func:`~repro.compiled.loop.run_compiled` — the array step loop: a
  :class:`~repro.ioa.scheduler.Scheduler`-equivalent driver whose steady
  state is "index a snapshot, pick an action id, follow one int-keyed
  memo edge", producing executions byte-identical to the interpreted
  path (the property suite in ``tests/compiled`` enforces this).

The interpreted path is untouched and remains the oracle: compiled
execution is opt-in per run (``ExperimentSpec(compiled=True)``,
``Scheduler(compiled=True)``), process-wide
(:func:`set_compiled_default`) or via ``REPRO_COMPILED=1``.
:func:`repro.compiled.system.compile_spec` (exposed as
``repro.api.compile``) adds a fingerprint-keyed cache so the tables are
reused across runs of the same spec family.
"""

from repro.compiled.config import (
    compiled_default,
    set_compiled_default,
)
from repro.compiled.intern import Interner
from repro.compiled.tables import (
    CompiledAutomaton,
    CompiledComposition,
    compile_automaton,
)
from repro.compiled.loop import run_compiled
from repro.compiled.system import (
    CompiledSystem,
    CompiledSystemMeta,
    compile_spec,
)

__all__ = [
    "CompiledAutomaton",
    "CompiledComposition",
    "CompiledSystem",
    "CompiledSystemMeta",
    "Interner",
    "compile_automaton",
    "compile_spec",
    "compiled_default",
    "run_compiled",
    "set_compiled_default",
]
