"""Spec-level compilation: ``compile_spec`` and :class:`CompiledSystem`.

:func:`repro.api.compile` bottoms out here.  Compiling an
:class:`~repro.runner.spec.ExperimentSpec` builds the spec's system
*once* — automata instantiated, composition assembled, dispatch/enabled
tables lowered — and returns a handle whose :meth:`CompiledSystem.run`
executes seeded runs against the shared tables.  Each run still streams
through its own policy RNG, injections and checkers, so results are
byte-identical to ``spec.run()`` on the interpreted path; only the
table-construction cost is amortized.

Reuse is keyed by the *spec fingerprint*: the JSON identity of
everything that determines the built system — problem, detector (and
kwargs), algorithm (and kwargs), locations, proposals, and the resolved
fault plan.  Run-varying knobs (seed, policy, max_steps, crash pattern,
instrumentation) are deliberately excluded, so a seed sweep or a crash
sweep over one system family hits the same compiled tables.  One
subtlety is self-correcting: an *unbound* fault plan resolves through
``derive_seed(spec.seed, "fault-plan")``, and the resolved summary
(which carries its seed) is part of the fingerprint — so chaos sweeps
key per-seed automatically, as they must: different bound plans build
different channel automata.

The fingerprint cache is a small LRU (:data:`SPEC_CACHE_CAP` entries);
per-system transition tables are additionally capped at
:data:`TABLE_CAP` entries and rebuilt from scratch between runs when
exceeded (a bound on memory, not on correctness — the tables are a pure
cache of the transition relation).
"""

from __future__ import annotations

import dataclasses
import inspect
import json
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.compiled.tables import CompiledAutomaton, compile_automaton
from repro.obs.prof import cache_counter

#: Schema tag of :class:`CompiledSystemMeta` (and the fingerprint payload).
SCHEMA = "repro.compiled/1"

#: Max entries per compiled transition/config table before the tables are
#: cleared between runs (memory bound; tables are pure caches).
TABLE_CAP = 1 << 17

#: Max distinct spec fingerprints kept compiled at once (LRU).
SPEC_CACHE_CAP = 8

_SPEC_CACHE: "OrderedDict[str, CompiledSystem]" = OrderedDict()
_C_SPEC = cache_counter("compiled.spec")


def _identity(obj: Any) -> Any:
    """A JSON-able identity for a fingerprint component.

    Plain values pass through; classes and module-level factories
    fingerprint by qualified name (stable across processes); opaque
    instances fall back to type + object id — correct (runs sharing the
    instance share tables) but process-local, which is exactly the reuse
    an in-memory cache can promise for them.
    """
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    if isinstance(obj, type):
        return f"{obj.__module__}.{obj.__qualname__}"
    if inspect.isroutine(obj):
        return f"{getattr(obj, '__module__', '?')}.{obj.__qualname__}"
    return f"{type(obj).__module__}.{type(obj).__qualname__}@{id(obj):x}"


def spec_fingerprint(spec) -> str:
    """The canonical JSON identity of the system a spec builds.

    Two specs with equal fingerprints build behaviorally identical
    systems and may share one :class:`CompiledSystem` (and its interned
    tables); see the module docstring for what is included and why
    seeds/crashes are not.
    """
    plan = spec.resolve_fault_plan()
    payload = {
        "schema": SCHEMA,
        "problem": spec.problem,
        "detector": _identity(spec.detector),
        "detector_kwargs": {
            str(k): _identity(v)
            for k, v in sorted(spec.detector_kwargs.items())
        },
        "algorithm": _identity(spec.algorithm),
        "algorithm_kwargs": {
            str(k): _identity(v)
            for k, v in sorted(spec.algorithm_kwargs.items())
        },
        "locations": list(spec.locations),
        "proposals": {
            str(k): _identity(v)
            for k, v in sorted(spec.effective_proposals().items())
        },
        "fault_plan": plan.summary() if plan is not None else None,
    }
    return json.dumps(payload, sort_keys=True, default=str)


@dataclass(frozen=True)
class CompiledSystemMeta:
    """Picklable identity card of one compiled system.

    ``tables`` is the size snapshot taken at compile time (after the
    initial configuration is interned); live sizes grow with use and are
    available from :meth:`CompiledSystem.table_sizes`.
    """

    fingerprint: str
    problem: str
    detector: str
    locations: Tuple[int, ...]
    n_components: int
    version: str
    tables: Dict[str, int]
    schema: str = SCHEMA

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "fingerprint": self.fingerprint,
            "problem": self.problem,
            "detector": self.detector,
            "locations": list(self.locations),
            "n_components": self.n_components,
            "version": self.version,
            "tables": dict(self.tables),
        }


class CompiledSystem:
    """One spec family, compiled: shared tables + a run entrypoint.

    Not picklable as a whole (it holds live automata and table state) —
    ship the *spec* to workers and let each process compile; the
    :attr:`meta` card is the picklable part.
    """

    def __init__(
        self,
        spec,
        core: CompiledAutomaton,
        meta: CompiledSystemMeta,
        system=None,
        afd=None,
        algorithm=None,
        automaton=None,
    ):
        self.spec = spec
        self.core = core
        self.meta = meta
        #: The prebuilt :class:`~repro.system.network.System` ("consensus").
        self.system = system
        self.afd = afd
        self.algorithm = algorithm
        #: The detector's generator automaton ("detector-trace").
        self.automaton = automaton

    def run(self, **overrides):
        """Execute one seeded run against the compiled tables.

        ``overrides`` replace spec fields for this run (``seed=``,
        ``max_steps=``, ``crashes=``, ``instrument=``, ...); the run is
        routed back through :func:`repro.runner.spec.run_spec` with
        ``compiled=True``, so the result is exactly what
        ``replace(spec, ...).run()`` would produce — same trace, same
        verdicts — minus the table-construction cost.
        """
        from repro.runner.spec import run_spec

        spec = dataclasses.replace(self.spec, compiled=True, **overrides)
        return run_spec(spec)

    def table_sizes(self) -> Dict[str, int]:
        """Live table sizes (grow as runs sight new configurations)."""
        return self.core.table_sizes()

    def maybe_reset(self) -> bool:
        """Clear the tables if any grew past :data:`TABLE_CAP`.

        Called between runs (never during one — outstanding ids must
        stay dereferenceable for a run's whole lifetime).
        """
        sizes = self.core.table_sizes()
        if any(
            sizes.get(k, 0) > TABLE_CAP for k in ("configs", "transitions")
        ):
            self.core.reset_tables()
            return True
        return False

    def __repr__(self) -> str:
        sizes = self.table_sizes()
        return (
            f"<CompiledSystem {self.meta.problem}:{self.meta.detector} "
            f"n={len(self.meta.locations)} configs={sizes.get('configs', 0)} "
            f"transitions={sizes.get('transitions', 0)}>"
        )


def _detector_label(spec) -> str:
    det = (
        spec.detector
        if isinstance(spec.detector, str)
        else getattr(spec.detector, "name", type(spec.detector).__name__)
    )
    return str(det)


def _build(spec, fingerprint: str) -> CompiledSystem:
    from repro import __version__

    afd = spec.resolve_afd()
    if spec.problem == "consensus":
        from repro.system.environment import ScriptedConsensusEnvironment
        from repro.system.network import SystemBuilder

        algorithm = spec.resolve_algorithm()
        builder = (
            SystemBuilder(spec.locations)
            .with_algorithm(algorithm)
            .with_failure_detector(afd.automaton())
            .with_environment(
                ScriptedConsensusEnvironment(spec.effective_proposals())
            )
        )
        plan = spec.resolve_fault_plan()
        if plan is not None:
            builder.with_fault_plan(plan)
        system = builder.build()
        core = compile_automaton(system.composition)
        core.intern_config(system.composition.initial_state())
        meta = CompiledSystemMeta(
            fingerprint=fingerprint,
            problem=spec.problem,
            detector=_detector_label(spec),
            locations=tuple(spec.locations),
            n_components=len(system.composition.components),
            version=__version__,
            tables=dict(core.table_sizes()),
        )
        return CompiledSystem(
            spec=spec,
            core=core,
            meta=meta,
            system=system,
            afd=afd,
            algorithm=algorithm,
        )
    automaton = afd.automaton()
    core = compile_automaton(automaton)
    core.intern_config(automaton.initial_state())
    meta = CompiledSystemMeta(
        fingerprint=fingerprint,
        problem=spec.problem,
        detector=_detector_label(spec),
        locations=tuple(spec.locations),
        n_components=1,
        version=__version__,
        tables=dict(core.table_sizes()),
    )
    return CompiledSystem(
        spec=spec, core=core, meta=meta, afd=afd, automaton=automaton
    )


def compile_spec(spec) -> CompiledSystem:
    """Compile a spec's system, reusing tables across equal fingerprints.

    The front door of the compiled core (``repro.api.compile``).  Probes
    tally under ``compiled.spec`` in the cache telemetry: a hit means a
    prior compilation (this process) is being reused wholesale.
    """
    fingerprint = spec_fingerprint(spec)
    cached = _SPEC_CACHE.get(fingerprint)
    if cached is not None:
        _C_SPEC.hits += 1
        _SPEC_CACHE.move_to_end(fingerprint)
        cached.maybe_reset()
        return cached
    _C_SPEC.misses += 1
    built = _build(spec, fingerprint)
    _SPEC_CACHE[fingerprint] = built
    while len(_SPEC_CACHE) > SPEC_CACHE_CAP:
        _SPEC_CACHE.popitem(last=False)
        _C_SPEC.evictions += 1
    return built


def clear_spec_cache() -> int:
    """Drop every cached compiled system; returns the number dropped."""
    dropped = len(_SPEC_CACHE)
    _C_SPEC.evictions += dropped
    _SPEC_CACHE.clear()
    return dropped
