"""The array step loop: a Scheduler-equivalent driver over interned ids.

One compiled step in steady state is: index the current config's enabled
snapshot, let the policy twin pick an action id, follow one int-keyed
memo edge to the next config id, and append the pre-materialized state.
No nested-state hashing, no snapshot dict assembly, no state-tuple copy.

Byte-identity with :meth:`repro.ioa.scheduler.Scheduler.run` is the
load-bearing contract (the interpreted path is the oracle; the property
suite in ``tests/compiled/test_equivalence.py`` and the perf guard's
drift check enforce it).  Three ingredients:

* the loop structure — injection due/fast-forward resolution, stop/
  quiescence checks, observer notifications, error messages — mirrors
  the interpreted loop statement for statement;
* *policy twins*: the round-robin twin replays the cursor arithmetic
  over task indices (``aids[0]`` of a snapshot group equals
  ``min(enabled)`` because groups are interned sorted); the random twin
  draws from its policy's own RNG over same-length sequences in the
  same order, so the draw stream is identical; any other policy
  (adversaries, crash-rule wrappers) gets the *generic bridge*, which
  calls ``policy.choose`` on the base automaton and materialized state
  — interpreted speed, compiled correctness;
* states handed to ``stop_when``, observers and the returned
  :class:`~repro.ioa.executions.Execution` are the interner's canonical
  values — equal by value to the interpreted run's.

The profiled twin books the same phases as the interpreted profiled
loop (``snapshot``/``policy``/``apply``/``chan-tick``/``observe``/
``injection``) plus the compiled core's own: ``intern`` for transition
misses (first sightings doing interpreted applies + interning) and —
booked by the scheduler-side resolution in :func:`compiled_run` —
``compile`` for table construction.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional

from repro.ioa.actions import Action
from repro.ioa.automaton import State
from repro.ioa.executions import Execution
from repro.ioa.scheduler import (
    AdversarialPolicy,
    Injection,
    RandomPolicy,
    RoundRobinPolicy,
    SchedulerPolicy,
    _export_cache_metrics,
)
from repro.compiled.tables import CompiledAutomaton, compile_automaton


class _RoundRobinDriver:
    """The compiled twin of :class:`RoundRobinPolicy`.

    ``snapshot_full`` is indexed by task id in ``tasks()`` order and
    every group is sorted in Action order, so scanning from the cursor
    and returning ``aids[0]`` reproduces the interpreted policy's
    ``min(enabled)`` choice and cursor advance exactly.
    """

    __slots__ = ("core", "policy", "cursor", "n")

    def __init__(self, core: CompiledAutomaton, policy: RoundRobinPolicy):
        self.core = core
        self.policy = policy
        self.n = len(core.task_names)
        self.cursor = 0

    def reset(self) -> None:
        self.policy.reset()
        self.cursor = 0

    def finish(self) -> None:
        # Keep the policy object's cursor as the interpreted run would
        # have left it (observable to callers reusing the instance).
        self.policy._cursor = self.cursor

    def prewarm(self, cid: int, state: State) -> None:
        self.core.snapshot_full(cid)

    def choose(self, cid: int, step: int) -> Optional[int]:
        n = self.n
        if not n:
            return None
        snap = self.core.snapshot_full(cid)
        cursor = self.cursor
        for offset in range(n):
            aids = snap[(cursor + offset) % n]
            if aids:
                self.cursor = (cursor + offset + 1) % n
                return aids[0]
        return None


class _RandomDriver:
    """The compiled twin of :class:`RandomPolicy`.

    Draws from the policy's own RNG: one ``choice`` over the dense
    snapshot (same length and order as the interpreted candidates list),
    one over the chosen group (interned sorted, equal to the interpreted
    ``sorted(enabled)``).  ``random.Random.choice`` consumes entropy as
    a function of sequence *length* only, so the draw stream — and hence
    the run — is byte-identical to the interpreted policy's.
    """

    __slots__ = ("core", "policy", "rng")

    def __init__(self, core: CompiledAutomaton, policy: RandomPolicy):
        self.core = core
        self.policy = policy
        self.rng = policy._rng

    def reset(self) -> None:
        self.policy.reset()
        self.rng = self.policy._rng

    def finish(self) -> None:
        pass

    def prewarm(self, cid: int, state: State) -> None:
        self.core.snapshot_dense(cid)

    def choose(self, cid: int, step: int) -> Optional[int]:
        dense = self.core.snapshot_dense(cid)
        if not dense:
            return None
        group = self.rng.choice(dense)
        return self.rng.choice(group)


class _BridgedView:
    """What the generic bridge shows a policy: the base automaton, with
    ``enabled_by_task`` memoized on state identity.

    Compiled states are canonical — ``state_of`` returns one object per
    config id — so a run that revisits a config serves the policy's
    snapshot from the memo instead of re-merging per-component enabled
    sets.  The memo holds the interpreted result verbatim (same keys,
    same insertion order, same tuples) and hands out a fresh shallow
    copy per call, exactly as :meth:`Composition.enabled_by_task`
    returns a fresh dict, so policies that mutate their snapshot see no
    difference.  Entries pin the state object, keeping identity keys
    valid for the memo's lifetime.  Every other attribute delegates to
    the base automaton.
    """

    __slots__ = ("_base", "_memo")

    def __init__(self, base):
        self._base = base
        self._memo: Dict[int, tuple] = {}

    def __getattr__(self, name):
        return getattr(self._base, name)

    def enabled_by_task(self, state):
        entry = self._memo.get(id(state))
        if entry is not None and entry[0] is state:
            return dict(entry[1])
        snapshot = self._base.enabled_by_task(state)
        self._memo[id(state)] = (state, snapshot)
        return dict(snapshot)


class _GenericDriver:
    """The bridge for arbitrary policies (adversaries, rule wrappers).

    Presents the base automaton (behind :class:`_BridgedView`) and the
    materialized state, so the policy sees exactly what the interpreted
    scheduler would show it; the chosen action is interned on the way
    back.  Costs interpreted speed for first-sighting choices; revisited
    configs hit the view's snapshot memo, and actions the policy hands
    back out of memoized snapshots (canonical objects) resolve their id
    through an identity-keyed memo instead of re-hashing.
    """

    __slots__ = ("core", "policy", "view", "aid_memo")

    def __init__(self, core: CompiledAutomaton, policy: SchedulerPolicy):
        self.core = core
        self.policy = policy
        self.view = _BridgedView(core.base)
        self.aid_memo: Dict[int, tuple] = {}

    def reset(self) -> None:
        self.policy.reset()

    def finish(self) -> None:
        pass

    def prewarm(self, cid: int, state: State) -> None:
        self.view.enabled_by_task(state)

    def _intern_chosen(self, action: Action) -> int:
        entry = self.aid_memo.get(id(action))
        if entry is not None and entry[0] is action:
            return entry[1]
        aid = self.core.intern_action(action)
        self.aid_memo[id(action)] = (action, aid)
        return aid

    def choose(self, cid: int, step: int) -> Optional[int]:
        action = self.policy.choose(
            self.view, self.core.state_of(cid), step
        )
        if action is None:
            return None
        return self._intern_chosen(action)


class _AdversarialDriver(_GenericDriver):
    """The compiled twin of :class:`AdversarialPolicy`.

    The interpreted policy's per-step options list is a pure function of
    the enabled snapshot, so it is memoized per config id — built once
    through the bridged view, in ``tasks()`` order, from the very tuples
    the interpreted policy would pass its chooser.  Each step hands the
    chooser a fresh shallow copy (the interpreted policy builds a new
    list per call); when the chooser abstains, the fallback policy runs
    against the view exactly as :meth:`AdversarialPolicy.choose` runs it
    against the base automaton.
    """

    __slots__ = ("options_memo",)

    def __init__(self, core: CompiledAutomaton, policy: AdversarialPolicy):
        super().__init__(core, policy)
        self.options_memo: Dict[int, list] = {}

    def prewarm(self, cid: int, state: State) -> None:
        self._options(cid, state)

    def _options(self, cid: int, state: State) -> list:
        options = self.options_memo.get(cid)
        if options is None:
            snapshot = self.view.enabled_by_task(state)
            options = [
                (task, snapshot[task])
                for task in self.core.base.tasks()
                if task in snapshot
            ]
            self.options_memo[cid] = options
        return options

    def choose(self, cid: int, step: int) -> Optional[int]:
        state = self.core.state_of(cid)
        options = self._options(cid, state)
        if not options:
            return None
        policy = self.policy
        action = policy._chooser(state, list(options), step)
        if action is None:
            action = policy._fallback.choose(self.view, state, step)
        if action is None:
            return None
        return self._intern_chosen(action)


def _driver_for(core: CompiledAutomaton, policy: SchedulerPolicy):
    # Exact types only: subclasses may override choose() arbitrarily and
    # must go through the generic bridge.
    if type(policy) is RoundRobinPolicy:
        return _RoundRobinDriver(core, policy)
    if type(policy) is RandomPolicy:
        return _RandomDriver(core, policy)
    if type(policy) is AdversarialPolicy:
        return _AdversarialDriver(core, policy)
    return _GenericDriver(core, policy)


def run_compiled(
    core: CompiledAutomaton,
    policy: SchedulerPolicy,
    max_steps: int,
    injections: Iterable[Injection] = (),
    stop_when: Optional[Callable[[State, int], bool]] = None,
    start: Optional[State] = None,
    observer=None,
    metrics=None,
    profiler=None,
) -> Execution:
    """Produce an execution over the compiled tables.

    Semantics (and the returned execution) are identical to
    ``Scheduler.run`` with the same arguments on ``core.base``.
    """
    if profiler is not None:
        return _run_compiled_profiled(
            core, policy, max_steps, injections, stop_when, start,
            observer, metrics, profiler,
        )
    driver = _driver_for(core, policy)
    driver.reset()
    base = core.base
    wall_start = time.perf_counter() if metrics is not None else 0.0
    if metrics is not None:
        from repro.obs.prof import cache_stats_snapshot

        cache_base = cache_stats_snapshot()
    pending: Dict[int, List[Action]] = {}
    for injection in injections:
        pending.setdefault(injection.step, []).append(injection.action)

    cid = core.intern_config(
        base.initial_state() if start is None else start
    )
    state = core.state_of(cid)
    states: List[State] = [state]
    actions: List[Action] = []
    step = 0
    reason = "max-steps"
    # Steady state is one memo probe per step; the probe (and its
    # counter tallies, identical to ``apply_ids``) is inlined with the
    # lookups hoisted so the hot path is two dict gets and two appends.
    apply_memo = core._apply_memo
    apply_counter = core._c_apply
    state_of = core.state_of
    push_state = states.append
    push_action = actions.append
    if observer is not None:
        observer.on_run_start(base, max_steps)
    while step < max_steps:
        if stop_when is not None and stop_when(state, step):
            reason = "stopped"
            break
        if observer is not None:
            observer.on_step_scheduled(step)
        injected = False
        due = (
            min((s for s in pending if s <= step), default=None)
            if pending
            else None
        )
        if due is not None:
            action = pending[due].pop(0)
            if not pending[due]:
                del pending[due]
            if not base.enabled(state, action):
                raise ValueError(
                    f"injection {action} at step {step} is not enabled"
                )
            injected = True
            aid = core.intern_action(action)
        else:
            aid = driver.choose(cid, step)
            if aid is None:
                if not pending:
                    reason = "quiescent"
                    break
                next_step = min(pending)
                action = pending[next_step].pop(0)
                if not pending[next_step]:
                    del pending[next_step]
                if not base.enabled(state, action):
                    raise ValueError(
                        f"injection {action} (fast-forwarded from step "
                        f"{next_step}) is not enabled"
                    )
                injected = True
                aid = core.intern_action(action)
            else:
                action = core.action_of(aid)
        key = (cid, aid)
        nid = apply_memo.get(key)
        if nid is not None:
            apply_counter.hits += 1
            cid = nid
        else:
            apply_counter.misses += 1
            cid = core._transition(cid, aid)
            apply_memo[key] = cid
        state = state_of(cid)
        push_state(state)
        push_action(action)
        if observer is not None:
            observer.on_action(step, action, injected)
        step += 1
    driver.finish()
    if observer is not None:
        observer.on_run_end(step, reason)
    if metrics is not None:
        metrics.counter("scheduler.runs").inc()
        metrics.counter("scheduler.steps").inc(step)
        metrics.histogram("scheduler.run_wall_s").observe(
            time.perf_counter() - wall_start
        )
        _export_cache_metrics(metrics, cache_base)
    return Execution(states, actions)


def _run_compiled_profiled(
    core: CompiledAutomaton,
    policy: SchedulerPolicy,
    max_steps: int,
    injections: Iterable[Injection] = (),
    stop_when: Optional[Callable[[State, int], bool]] = None,
    start: Optional[State] = None,
    observer=None,
    metrics=None,
    profiler=None,
) -> Execution:
    """The phase-accounted twin of :func:`run_compiled`.

    Books the interpreted loop's phases, with one compiled-specific
    split: a transition-memo *miss* (interpreted applies + interning on
    first sighting) is booked under ``intern`` instead of ``apply`` /
    ``chan-tick``, so a profile directly shows how much of a run was
    table construction versus table replay.
    """
    prof = profiler
    clock = prof.clock
    driver = _driver_for(core, policy)
    driver.reset()
    base = core.base
    wall_start = time.perf_counter() if metrics is not None else 0.0
    if metrics is not None:
        from repro.obs.prof import cache_stats_snapshot

        cache_base = cache_stats_snapshot()
    pending: Dict[int, List[Action]] = {}
    for injection in injections:
        pending.setdefault(injection.step, []).append(injection.action)

    t0 = clock()
    cid = core.intern_config(
        base.initial_state() if start is None else start
    )
    prof.add("intern", clock() - t0)
    state = core.state_of(cid)
    states: List[State] = [state]
    actions: List[Action] = []
    step = 0
    reason = "max-steps"
    injected_count = 0
    apply_memo = core._apply_memo
    apply_counter = core._c_apply
    prof.on_run_start()
    if observer is not None:
        observer.on_run_start(base, max_steps)
    while step < max_steps:
        if stop_when is not None and stop_when(state, step):
            reason = "stopped"
            break
        if observer is not None:
            t0 = clock()
            observer.on_step_scheduled(step)
            prof.add("observe", clock() - t0)
        injected = False
        due = (
            min((s for s in pending if s <= step), default=None)
            if pending
            else None
        )
        if due is not None:
            t0 = clock()
            action = pending[due].pop(0)
            if not pending[due]:
                del pending[due]
            if not base.enabled(state, action):
                raise ValueError(
                    f"injection {action} at step {step} is not enabled"
                )
            injected = True
            aid = core.intern_action(action)
            prof.add("injection", clock() - t0)
        else:
            # Warm what the policy is about to consume, mirroring the
            # interpreted profiled loop's snapshot/policy split: each
            # driver prewarms its own source (snapshot tables for the
            # twins, the bridged view's memo for generic policies).
            t0 = clock()
            driver.prewarm(cid, state)
            t1 = clock()
            prof.add("snapshot", t1 - t0)
            aid = driver.choose(cid, step)
            prof.add("policy", clock() - t1)
            if aid is None:
                if not pending:
                    reason = "quiescent"
                    break
                t0 = clock()
                next_step = min(pending)
                action = pending[next_step].pop(0)
                if not pending[next_step]:
                    del pending[next_step]
                if not base.enabled(state, action):
                    raise ValueError(
                        f"injection {action} (fast-forwarded from step "
                        f"{next_step}) is not enabled"
                    )
                injected = True
                aid = core.intern_action(action)
                prof.add("injection", clock() - t0)
            else:
                action = core.action_of(aid)
        if injected:
            injected_count += 1
        t0 = clock()
        key = (cid, aid)
        nid = apply_memo.get(key)
        if nid is not None:
            apply_counter.hits += 1
            cid = nid
            phase = "chan-tick" if core.is_tick(aid) else "apply"
        else:
            apply_counter.misses += 1
            cid = core._transition(cid, aid)
            apply_memo[key] = cid
            phase = "intern"
        prof.add(phase, clock() - t0)
        state = core.state_of(cid)
        states.append(state)
        actions.append(action)
        if observer is not None:
            t0 = clock()
            observer.on_action(step, action, injected)
            prof.add("observe", clock() - t0)
        step += 1
    driver.finish()
    if observer is not None:
        t0 = clock()
        observer.on_run_end(step, reason)
        prof.add("observe", clock() - t0)
    prof.on_run_end(step, injected_count)
    if metrics is not None:
        metrics.counter("scheduler.runs").inc()
        metrics.counter("scheduler.steps").inc(step)
        metrics.histogram("scheduler.run_wall_s").observe(
            time.perf_counter() - wall_start
        )
        _export_cache_metrics(metrics, cache_base)
    return Execution(states, actions)


def compiled_run(
    automaton,
    policy: SchedulerPolicy,
    max_steps: int,
    injections: Iterable[Injection] = (),
    stop_when: Optional[Callable[[State, int], bool]] = None,
    start: Optional[State] = None,
    observer=None,
    metrics=None,
    profiler=None,
) -> Execution:
    """Compile (cached per automaton instance) and run.

    The :class:`~repro.ioa.scheduler.Scheduler` routes here when
    compiled execution is requested; with a profiler attached, table
    resolution is booked under the ``compile`` phase.
    """
    if profiler is not None:
        t0 = profiler.clock()
        core = compile_automaton(automaton)
        profiler.add("compile", profiler.clock() - t0)
    else:
        core = compile_automaton(automaton)
    return run_compiled(
        core,
        policy,
        max_steps,
        injections=injections,
        stop_when=stop_when,
        start=start,
        observer=observer,
        metrics=metrics,
        profiler=profiler,
    )
