"""Terminating reliable broadcast by f+1 rounds of flooding over P.

Every process participates in f+1 P-emulated rounds
(:mod:`repro.algorithms.rounds`), each round broadcasting its current
knowledge of the sender's message (the message, or None).  After the
rounds, it delivers the message if known and the SILENT placeholder
otherwise.

Correctness in the crash model: with at most f crashes, some round among
the f+1 is crash-free; after that round every (still live) process has
identical knowledge, and knowledge never diverges again — so deliveries
agree.  If the sender is live, round 1 already spreads the message to
everyone, giving validity.  The sender's own rounds start only after its
``bcast`` input; everyone else starts immediately and simply relays None
until the message reaches them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Hashable, Optional, Sequence

from repro.ioa.actions import Action
from repro.ioa.signature import ActionSet, PredicateActionSet
from repro.algorithms.rounds import NOT_READY, SynchronousRoundProcess
from repro.detectors.perfect import PERFECT_OUTPUT
from repro.problems.reliable_broadcast import (
    BCAST,
    DELIVER,
    SILENT,
    deliver_action,
)
from repro.system.process import DistributedAlgorithm, ProcessAutomaton


@dataclass(frozen=True)
class TrbApp:
    """Application state: the known message (if any) and delivery flag."""

    value: Optional[Hashable] = None
    delivered: bool = False


class TrbFloodingProcess(SynchronousRoundProcess):
    """One location of the flooding TRB algorithm."""

    message_tag = "trb"

    def __init__(
        self,
        location: int,
        locations: Sequence[int],
        sender: int,
        f: int,
        fd_output_name: str = PERFECT_OUTPUT,
    ):
        locations = tuple(locations)
        if sender not in locations:
            raise ValueError(f"sender {sender} not among {locations}")
        self.sender = sender
        self.f = f
        self.num_rounds = f + 1
        super().__init__(
            location, locations, fd_output_name, name=f"trb[{location}]"
        )

    # -- Hooks ---------------------------------------------------------------

    def app_initial(self) -> TrbApp:
        return TrbApp()

    def extra_inputs(self) -> ActionSet:
        if self.location != self.sender:
            from repro.ioa.signature import EmptyActionSet

            return EmptyActionSet()
        return PredicateActionSet(
            lambda a: (
                a.name == BCAST
                and a.location == self.sender
                and len(a.payload) == 1
            ),
            f"bcast at {self.sender}",
        )

    def core_outputs(self) -> ActionSet:
        return PredicateActionSet(
            lambda a: a.name == DELIVER and a.location == self.location,
            f"deliver at {self.location}",
        )

    def on_input(self, app: TrbApp, action: Action) -> TrbApp:
        if action.name == BCAST and self.location == self.sender:
            if app.value is None:
                return replace(app, value=action.payload[0])
            return app
        if action.name == DELIVER:
            return replace(app, delivered=True)
        return app

    def start_payload(self, app: TrbApp):
        if self.location == self.sender and app.value is None:
            return NOT_READY  # the sender waits for its bcast input
        return app.value  # None encodes "nothing known yet"

    def fold_round(
        self, app: TrbApp, completed_round: int, received: Dict[int, Hashable]
    ) -> TrbApp:
        if app.value is not None:
            return app
        for payload in received.values():
            if payload is not None:
                return replace(app, value=payload)
        return app

    def next_payload(self, app: TrbApp, upcoming_round: int):
        return app.value

    def final_output(self, app: TrbApp) -> Optional[Action]:
        if app.delivered:
            return None
        value = app.value if app.value is not None else SILENT
        return deliver_action(self.location, value)

    # -- Introspection -------------------------------------------------------------

    @staticmethod
    def delivery(state):
        """The delivered value (possibly SILENT), or None if undelivered."""
        _failed, core = state
        if not core.app.delivered:
            return None
        return core.app.value if core.app.value is not None else SILENT


def trb_flooding_algorithm(
    locations: Sequence[int],
    sender: int,
    f: int,
    fd_output_name: str = PERFECT_OUTPUT,
) -> DistributedAlgorithm:
    """The flooding TRB algorithm for a designated sender."""
    processes: Dict[int, ProcessAutomaton] = {
        i: TrbFloodingProcess(i, locations, sender, f, fd_output_name)
        for i in locations
    }
    return DistributedAlgorithm(processes)
