"""FloodMin: k-set agreement over the perfect detector P.

The classic synchronous algorithm, run over P-emulated rounds
(:mod:`repro.algorithms.rounds`): every process floods its current
minimum for ``floor(f/k) + 1`` rounds and then decides it.  In the
synchronous crash model, at most k distinct values survive: hiding an
extra value for a round costs the adversary a crash, and it can afford
fewer than k per round on average.

Two precision notes for this asynchronous emulation:

* **k = 1 is consensus** (rounds = f + 1) and is *fully* guaranteed here:
  divergence would need a chain of f+1 distinct crashed carriers, one per
  round — a process that never crashes broadcasts its minimum and P's
  strong accuracy forces everyone to fold it (a live sender can never be
  skipped), and a live *receiver* of the final round must likewise wait
  for a live sender's message.
* **k >= 2**: emulated rounds are marginally weaker than synchronous
  rounds — a suspicion can race a fully-sent message still in a channel,
  letting one real crash produce skips in several rounds.  Under the fair
  schedulers in this repository the races do not materialize (channel
  delivery precedes the advance in every cycle) and the classic bound is
  validated empirically across crash sweeps; for an adversarially
  scheduled deployment, instantiate with ``rounds = f + 1``, which is
  safe for every k by the chain argument above.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Hashable, Iterable, Optional, Sequence

from repro.ioa.actions import Action
from repro.ioa.signature import ActionSet, FiniteActionSet
from repro.algorithms.rounds import NOT_READY, SynchronousRoundProcess
from repro.detectors.perfect import PERFECT_OUTPUT
from repro.system.environment import DECIDE, PROPOSE, decide_action
from repro.system.process import DistributedAlgorithm, ProcessAutomaton


@dataclass(frozen=True)
class FloodMinApp:
    """Application state: the running minimum and the decision flag."""

    value: Optional[int] = None
    decided: bool = False


class FloodMinProcess(SynchronousRoundProcess):
    """One location of FloodMin for k-set agreement."""

    message_tag = "floodmin"

    def __init__(
        self,
        location: int,
        locations: Sequence[int],
        k: int,
        f: int,
        values: Sequence[int] = None,
        fd_output_name: str = PERFECT_OUTPUT,
        rounds: int = None,
    ):
        locations = tuple(locations)
        if not 1 <= k <= len(locations):
            raise ValueError(f"k must be in [1, n], got {k}")
        if not 0 <= f <= len(locations) - 1:
            raise ValueError(f"f must be in [0, n-1], got {f}")
        self.k = k
        self.f = f
        self.values = tuple(values) if values is not None else locations
        self.num_rounds = rounds if rounds is not None else f // k + 1
        super().__init__(
            location, locations, fd_output_name, name=f"floodmin[{location}]"
        )

    # -- Hooks ---------------------------------------------------------------

    def app_initial(self) -> FloodMinApp:
        return FloodMinApp()

    def extra_inputs(self) -> ActionSet:
        return FiniteActionSet(
            tuple(
                Action(PROPOSE, self.location, (v,)) for v in self.values
            )
        )

    def core_outputs(self) -> ActionSet:
        return FiniteActionSet(
            tuple(decide_action(self.location, v) for v in self.values)
        )

    def on_input(self, app: FloodMinApp, action: Action) -> FloodMinApp:
        if action.name == PROPOSE and app.value is None:
            return replace(app, value=action.payload[0])
        if action.name == DECIDE:
            return replace(app, decided=True)
        return app

    def start_payload(self, app: FloodMinApp):
        return app.value if app.value is not None else NOT_READY

    def fold_round(
        self, app: FloodMinApp, completed_round: int, received: Dict[int, int]
    ) -> FloodMinApp:
        candidates = [app.value] + list(received.values())
        return replace(app, value=min(candidates))

    def next_payload(self, app: FloodMinApp, upcoming_round: int):
        return app.value

    def final_output(self, app: FloodMinApp) -> Optional[Action]:
        if app.decided:
            return None
        return decide_action(self.location, app.value)

    # -- Introspection -------------------------------------------------------------

    @staticmethod
    def decision(state) -> Optional[int]:
        _failed, core = state
        return core.app.value if core.app.decided else None


def floodmin_algorithm(
    locations: Sequence[int],
    k: int,
    f: int,
    values: Sequence[int] = None,
    fd_output_name: str = PERFECT_OUTPUT,
    rounds: int = None,
) -> DistributedAlgorithm:
    """FloodMin over ``locations`` for k-set agreement with f crashes."""
    processes: Dict[int, ProcessAutomaton] = {
        i: FloodMinProcess(
            i, locations, k, f, values, fd_output_name, rounds
        )
        for i in locations
    }
    return DistributedAlgorithm(processes)
