"""Communication-closed synchronous rounds emulated over P.

Classic synchronous crash-model algorithms (FloodMin for k-set
agreement, flooding for terminating reliable broadcast, vote collection
for NBAC) port to the asynchronous model when the perfect detector P is
available: in round r, a process broadcasts, then waits for each peer's
round-r message *or* a suspicion of that peer.  P's strong accuracy means
a live peer is never skipped (its message is always awaited), and strong
completeness means waits on crashed peers terminate — exactly the crash
semantics of a synchronous round, where a process crashing in round r
reaches an arbitrary subset of recipients.

:class:`SynchronousRoundProcess` implements the round engine once;
concrete algorithms supply a small set of hooks over an immutable
application state.
"""

from __future__ import annotations

from abc import abstractmethod
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Optional,
    Sequence,
    Tuple,
)

from repro.ioa.actions import Action
from repro.ioa.automaton import State
from repro.ioa.signature import ActionSet, PredicateActionSet
from repro.detectors.perfect import PERFECT_OUTPUT
from repro.system.process import ProcessAutomaton

#: Returned by :meth:`SynchronousRoundProcess.start_payload` while the
#: process is not yet ready to enter round 1 (e.g. no proposal received).
NOT_READY = "<not-ready>"

START = "rounds-start"
ADVANCE = "rounds-advance"


@dataclass(frozen=True)
class RoundsState:
    """Engine state wrapping the algorithm's immutable ``app`` state."""

    app: Hashable
    round: int = 0  # 0 = not started; rounds run 1..num_rounds
    suspects: Tuple[int, ...] = ()
    inbox: FrozenSet[Tuple[int, int, Hashable]] = frozenset()
    outbox: Tuple[Action, ...] = ()
    finished: bool = False  # final output emitted


class SynchronousRoundProcess(ProcessAutomaton):
    """The round engine; subclasses provide the algorithm hooks.

    Subclass contract (all over immutable app states):

    * :attr:`message_tag` — unique tag for this protocol's messages;
    * :attr:`num_rounds` — how many rounds to run;
    * :meth:`app_initial` — initial app state;
    * :meth:`on_input` — fold a non-engine input action (proposal, vote,
      broadcast, consensus decision, ...) into the app state;
    * :meth:`start_payload` — round-1 message, or :data:`NOT_READY`;
    * :meth:`fold_round` — fold a completed round's received payloads
      (per live-or-fast-enough sender) into the app state;
    * :meth:`next_payload` — the message for the given upcoming round;
    * :meth:`final_output` — the output action emitted after the last
      round (or ``None`` for protocols that only react afterwards);
    * :meth:`post_final_enabled` — optional further outputs after the
      final one (e.g. NBAC's verdict after the embedded consensus
      decides).
    """

    message_tag: str = "rnd"
    num_rounds: int = 1

    def __init__(
        self,
        location: int,
        locations: Sequence[int],
        fd_output_name: str = PERFECT_OUTPUT,
        name: str = "",
    ):
        self.all_locations: Tuple[int, ...] = tuple(locations)
        self.fd_output_name = fd_output_name
        super().__init__(location, name=name or f"rounds[{location}]")

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    @abstractmethod
    def app_initial(self) -> Hashable:
        """The algorithm's initial application state."""

    def on_input(self, app: Hashable, action: Action) -> Hashable:
        """Fold a non-engine input into the app state (default: ignore)."""
        return app

    @abstractmethod
    def start_payload(self, app: Hashable):
        """The round-1 message, or NOT_READY to keep waiting."""

    @abstractmethod
    def fold_round(
        self, app: Hashable, completed_round: int, received: Dict[int, Hashable]
    ) -> Hashable:
        """Fold the payloads received in a completed round."""

    @abstractmethod
    def next_payload(self, app: Hashable, upcoming_round: int):
        """The message to broadcast in the upcoming round."""

    def final_output(self, app: Hashable) -> Optional[Action]:
        """The output emitted once all rounds completed (None: nothing)."""
        return None

    def post_final_enabled(self, app: Hashable) -> Iterable[Action]:
        """Outputs enabled after the final output was emitted."""
        return ()

    def extra_inputs(self) -> ActionSet:
        """Further input actions beyond FD outputs and receives."""
        from repro.ioa.signature import EmptyActionSet

        return EmptyActionSet()

    # ------------------------------------------------------------------
    # Signature
    # ------------------------------------------------------------------

    def owns_message(self, message) -> bool:
        return (
            isinstance(message, tuple)
            and len(message) == 3
            and message[0] == self.message_tag
        )

    def core_inputs(self) -> ActionSet:
        extra = self.extra_inputs()
        return PredicateActionSet(
            lambda a: (
                a.location == self.location
                and a.name == self.fd_output_name
            )
            or a in extra,
            f"fd/extra inputs at {self.location}",
        )

    def core_internals(self) -> ActionSet:
        return PredicateActionSet(
            lambda a: (
                a.name in (START, ADVANCE)
                and a.location == self.location
                and len(a.payload) == 1
                and a.payload[0] == self.message_tag
            ),
            f"round engine internals at {self.location}",
        )

    # ------------------------------------------------------------------
    # Engine mechanics
    # ------------------------------------------------------------------

    def core_initial(self) -> State:
        return RoundsState(app=self.app_initial())

    def _broadcast(self, round_number: int, payload) -> Tuple[Action, ...]:
        message = (self.message_tag, round_number, payload)
        return tuple(
            self.send(message, j)
            for j in self.all_locations
            if j != self.location
        )

    def _round_complete(self, core: RoundsState) -> bool:
        if core.outbox or not 1 <= core.round <= self.num_rounds:
            return False
        heard = {
            sender
            for (r, sender, _p) in core.inbox
            if r == core.round
        }
        return all(
            j in heard or j in core.suspects
            for j in self.all_locations
            if j != self.location
        )

    def core_apply(self, core: RoundsState, action: Action) -> RoundsState:
        if (
            action.name == self.fd_output_name
            and action.location == self.location
        ):
            return replace(core, suspects=tuple(action.payload[0]))
        if self.is_receive(action):
            message, sender = self.received_message(action)
            if self.owns_message(message):
                _tag, round_number, payload = message
                return replace(
                    core,
                    inbox=core.inbox | {(round_number, sender, payload)},
                )
            return replace(core, app=self.on_input(core.app, action))
        if action.name == "send":
            if core.outbox and action == core.outbox[0]:
                return replace(core, outbox=core.outbox[1:])
            return core
        if action.name == START and action.location == self.location:
            payload = self.start_payload(core.app)
            return replace(
                core, round=1, outbox=core.outbox + self._broadcast(1, payload)
            )
        if action.name == ADVANCE and action.location == self.location:
            received = {
                sender: payload
                for (r, sender, payload) in core.inbox
                if r == core.round
            }
            app = self.fold_round(core.app, core.round, received)
            new_round = core.round + 1
            outbox = core.outbox
            if new_round <= self.num_rounds:
                outbox = outbox + self._broadcast(
                    new_round, self.next_payload(app, new_round)
                )
            return replace(core, app=app, round=new_round, outbox=outbox)
        # Final and post-final outputs, plus any other inputs: app hooks.
        final = self.final_output(core.app)
        if final is not None and action == final and not core.finished:
            return replace(
                core, finished=True, app=self.on_input(core.app, action)
            )
        return replace(core, app=self.on_input(core.app, action))

    def core_enabled(self, core: RoundsState) -> Iterable[Action]:
        if core.outbox:
            yield core.outbox[0]
        elif core.round == 0:
            if self.start_payload(core.app) != NOT_READY:
                yield Action(START, self.location, (self.message_tag,))
        elif self._round_complete(core):
            yield Action(ADVANCE, self.location, (self.message_tag,))
        elif core.round > self.num_rounds:
            if not core.finished:
                final = self.final_output(core.app)
                if final is not None:
                    yield final
                else:
                    yield from self.post_final_enabled(core.app)
            else:
                yield from self.post_final_enabled(core.app)
