"""The two reductions of Section 10.1 between consensus and the
query-based *participant* failure detector.

The participant detector is representative for consensus *within the
universe of query-based detectors* — precisely the phenomenon Theorem 21
rules out for AFDs.  Both directions are implemented:

* :func:`consensus_from_participant_algorithm` — each process broadcasts
  its proposal to everyone, *then* queries the detector; the response
  names a location guaranteed to have queried (hence to have finished
  broadcasting), so everyone can safely wait for that location's proposal
  and decide it;
* :func:`participant_from_consensus_algorithm` — upon its first query, a
  process proposes its own location ID to a (black-box) consensus
  instance; the consensus decision is a location that proposed, i.e. one
  that was queried; every query is answered with the decided ID.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import State
from repro.ioa.signature import ActionSet, FiniteActionSet, PredicateActionSet
from repro.detectors.participant import (
    QUERY,
    RESPONSE,
    query_action,
    response_action,
)
from repro.system.environment import DECIDE, PROPOSE, decide_action, propose_action
from repro.system.process import DistributedAlgorithm, ProcessAutomaton

PROPOSAL_MSG = "participant-prop"


@dataclass(frozen=True)
class _FromParticipantState:
    value: Optional[int] = None
    queried: bool = False
    chosen: Optional[int] = None
    proposals: FrozenSet[Tuple[int, int]] = frozenset()  # (sender, value)
    decided: bool = False
    decided_value: Optional[int] = None
    outbox: Tuple[Action, ...] = ()


class ConsensusFromParticipantProcess(ProcessAutomaton):
    """Solve consensus using the participant detector (Section 10.1)."""

    def __init__(self, location: int, locations: Sequence[int]):
        self.all_locations: Tuple[int, ...] = tuple(locations)
        super().__init__(location, name=f"consPart[{location}]")

    def core_inputs(self) -> ActionSet:
        return PredicateActionSet(
            lambda a: a.location == self.location
            and a.name in (PROPOSE, RESPONSE),
            f"propose/fd-response at {self.location}",
        )

    def core_outputs(self) -> ActionSet:
        return FiniteActionSet(
            (query_action(self.location),)
            + tuple(decide_action(self.location, v) for v in (0, 1))
        )

    def core_initial(self) -> State:
        return _FromParticipantState()

    def _known_value_of(
        self, core: _FromParticipantState, who: int
    ) -> Optional[int]:
        if who == self.location:
            return core.value
        for sender, value in core.proposals:
            if sender == who:
                return value
        return None

    def core_apply(self, core, action: Action):
        if action.name == PROPOSE:
            if core.value is None:
                value = action.payload[0]
                outbox = core.outbox + tuple(
                    self.send((PROPOSAL_MSG, value), j)
                    for j in self.all_locations
                    if j != self.location
                )
                return replace(core, value=value, outbox=outbox)
            return core
        if action.name == RESPONSE:
            return replace(core, chosen=action.payload[0])
        if self.is_receive(action):
            message, sender = self.received_message(action)
            if (
                isinstance(message, tuple)
                and len(message) == 2
                and message[0] == PROPOSAL_MSG
            ):
                return replace(
                    core, proposals=core.proposals | {(sender, message[1])}
                )
            return core
        if action.name == "send":
            if core.outbox and action == core.outbox[0]:
                return replace(core, outbox=core.outbox[1:])
            return core
        if action.name == QUERY:
            return replace(core, queried=True)
        if action.name == DECIDE:
            return replace(core, decided=True, decided_value=action.payload[0])
        return core

    def core_enabled(self, core) -> Iterable[Action]:
        if core.outbox:
            yield core.outbox[0]
        elif core.value is not None and not core.queried:
            # Query only after the proposal broadcast completed: that is
            # what makes the response's participation guarantee useful.
            yield query_action(self.location)
        elif core.chosen is not None and not core.decided:
            value = self._known_value_of(core, core.chosen)
            if value is not None:
                yield decide_action(self.location, value)

    @staticmethod
    def decision(state: State) -> Optional[int]:
        _failed, core = state
        return core.decided_value if core.decided else None

    @staticmethod
    def decided(state: State) -> bool:
        _failed, core = state
        return core.decided


def consensus_from_participant_algorithm(
    locations: Sequence[int],
) -> DistributedAlgorithm:
    """The consensus-using-participant algorithm over ``locations``."""
    processes: Dict[int, ProcessAutomaton] = {
        i: ConsensusFromParticipantProcess(i, locations) for i in locations
    }
    return DistributedAlgorithm(processes)


@dataclass(frozen=True)
class _FromConsensusState:
    pending: int = 0
    proposed: bool = False
    decided: Optional[int] = None


class ParticipantFromConsensusProcess(ProcessAutomaton):
    """Solve the participant detector using a consensus black box.

    The consensus instance must run over *location IDs* as values (the
    rotating-coordinator and Paxos algorithms in this package are
    value-agnostic; instantiate their processes with ``values=locations``
    via the environment that this automaton itself plays: it emits
    ``propose(i)_i`` into the consensus instance and consumes
    ``decide(l)_i`` from it).
    """

    uses_channels = False  # pure detector transformation: no messages

    def __init__(self, location: int, locations: Sequence[int]):
        self.all_locations: Tuple[int, ...] = tuple(locations)
        super().__init__(location, name=f"partCons[{location}]")

    def core_inputs(self) -> ActionSet:
        return PredicateActionSet(
            lambda a: a.location == self.location
            and a.name in (QUERY, DECIDE),
            f"query/decide at {self.location}",
        )

    def core_outputs(self) -> ActionSet:
        return FiniteActionSet(
            tuple(propose_action(self.location, l) for l in self.all_locations)
            + tuple(
                response_action(self.location, l) for l in self.all_locations
            )
        )

    def core_initial(self) -> State:
        return _FromConsensusState()

    def core_apply(self, core, action: Action):
        if action.name == QUERY:
            return replace(core, pending=core.pending + 1)
        if action.name == DECIDE:
            return replace(core, decided=action.payload[0])
        if action.name == PROPOSE:
            return replace(core, proposed=True)
        if action.name == RESPONSE:
            return replace(core, pending=max(0, core.pending - 1))
        return core

    def core_enabled(self, core) -> Iterable[Action]:
        if core.pending > 0 and not core.proposed:
            yield propose_action(self.location, self.location)
        elif core.pending > 0 and core.decided is not None:
            yield response_action(self.location, core.decided)


def participant_from_consensus_algorithm(
    locations: Sequence[int],
) -> DistributedAlgorithm:
    """The participant-using-consensus algorithm over ``locations``."""
    processes: Dict[int, ProcessAutomaton] = {
        i: ParticipantFromConsensusProcess(i, locations) for i in locations
    }
    return DistributedAlgorithm(processes)
