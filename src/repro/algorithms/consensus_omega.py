"""Paxos-style binary consensus using the leader oracle Omega.

This is the Section 9 setting: a distributed algorithm A that solves
f-crash-tolerant binary consensus using an AFD (here Omega, the weakest
detector for consensus [4]) in the well-formed environment E_C, for
f < n/2.

Protocol (single-decree Paxos with Omega choosing the proposer):

* a process that hears ``FD-Omega(i)_i`` (it is the leader), has a
  proposal, is not already running an attempt, and has not decided,
  starts a ballot ``b = (k, i)`` and broadcasts phase-1a;
* acceptors promise the highest ballot seen (phase-1b carries their
  latest accepted (ballot, value)), or reply nack with their promise;
* on a majority of promises the leader picks the value of the highest
  accepted ballot (or its own proposal) and broadcasts phase-2a;
* acceptors accept phase-2a iff it is not below their promise;
* on a majority of accepts the leader broadcasts the decision;
* a nack aborts the attempt and, if the process still believes it is the
  leader, immediately restarts with a higher ballot.

Safety (agreement, validity) is pure Paxos and holds on *every* trace;
liveness needs a majority of live locations plus T_Omega's eventual
unique live leader: the stable leader's attempts stop being nacked, so
some attempt reaches both majorities.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import State
from repro.ioa.signature import ActionSet, FiniteActionSet, PredicateActionSet
from repro.detectors.omega import OMEGA_OUTPUT
from repro.system.environment import PROPOSE, decide_action
from repro.system.process import DistributedAlgorithm, ProcessAutomaton

P1A = "p1a"
P1B = "p1b"
P2A = "p2a"
P2B = "p2b"
NACK = "nack"
DECIDE_MSG = "decide-msg"

Ballot = Tuple[int, int]  # (counter, location), ordered lexicographically


@dataclass(frozen=True)
class PaxosState:
    """Core state of one Omega-consensus process."""

    value: Optional[int] = None
    leader: Optional[int] = None
    ballot_counter: int = 0
    attempt: Optional[Ballot] = None
    phase: int = 0  # 0 idle, 1 collecting promises, 2 collecting accepts
    attempt_value: Optional[int] = None
    promises: FrozenSet[Tuple[int, Optional[Tuple[Ballot, int]]]] = frozenset()
    accepts: FrozenSet[int] = frozenset()
    promised: Optional[Ballot] = None
    accepted: Optional[Tuple[Ballot, int]] = None
    decided_value: Optional[int] = None
    decided_out: bool = False
    decide_broadcast: bool = False
    outbox: Tuple[Action, ...] = ()


class OmegaConsensusProcess(ProcessAutomaton):
    """One location's automaton; see the module docstring."""

    def __init__(
        self,
        location: int,
        locations: Sequence[int],
        fd_output_name: str = OMEGA_OUTPUT,
    ):
        self.all_locations: Tuple[int, ...] = tuple(locations)
        self.fd_output_name = fd_output_name
        super().__init__(location, name=f"consOmega[{location}]")

    @property
    def majority(self) -> int:
        return len(self.all_locations) // 2 + 1

    def owns_message(self, message) -> bool:
        # Own only Paxos messages so other message-passing layers can
        # share the location.
        return (
            isinstance(message, tuple)
            and bool(message)
            and message[0] in (P1A, P1B, P2A, P2B, NACK, DECIDE_MSG)
        )

    # -- Signature ------------------------------------------------------------

    def core_inputs(self) -> ActionSet:
        return PredicateActionSet(
            lambda a: a.location == self.location
            and a.name in (PROPOSE, self.fd_output_name),
            f"propose/fd at {self.location}",
        )

    def core_outputs(self) -> ActionSet:
        return FiniteActionSet(
            tuple(decide_action(self.location, v) for v in (0, 1))
        )

    # -- Helpers ------------------------------------------------------------------

    def _broadcast(self, message) -> Tuple[Action, ...]:
        return tuple(
            self.send(message, j)
            for j in self.all_locations
            if j != self.location
        )

    def _start_attempt(self, core: PaxosState) -> PaxosState:
        """Begin a new ballot strictly above everything seen so far."""
        floor = core.ballot_counter
        if core.promised is not None:
            floor = max(floor, core.promised[0])
        counter = floor + 1
        ballot: Ballot = (counter, self.location)
        # Self-promise (the leader is also an acceptor).
        promises = frozenset({(self.location, core.accepted)})
        return replace(
            core,
            ballot_counter=counter,
            attempt=ballot,
            phase=1,
            attempt_value=None,
            promises=promises,
            accepts=frozenset(),
            promised=ballot,
            outbox=core.outbox + self._broadcast((P1A, ballot)),
        )

    def _maybe_start(self, core: PaxosState) -> PaxosState:
        if core.leader != self.location:
            return core
        if core.decided_value is not None:
            # Liveness repair: the previous leader may have crashed midway
            # through its decision broadcast.  A decided process that
            # becomes leader re-broadcasts the decision once, so every
            # live waiter learns it.
            if not core.decide_broadcast:
                return replace(
                    core,
                    decide_broadcast=True,
                    outbox=core.outbox
                    + self._broadcast((DECIDE_MSG, core.decided_value)),
                )
            return core
        if core.value is not None and core.attempt is None:
            return self._start_attempt(core)
        return core

    def _check_promises(self, core: PaxosState) -> PaxosState:
        if core.phase != 1 or len(core.promises) < self.majority:
            return core
        best: Optional[Tuple[Ballot, int]] = None
        for _j, acc in core.promises:
            if acc is not None and (best is None or acc[0] > best[0]):
                best = acc
        chosen = best[1] if best is not None else core.value
        assert chosen is not None
        # The leader is also an acceptor: accept its own phase-2a.
        return replace(
            core,
            phase=2,
            attempt_value=chosen,
            accepted=(core.attempt, chosen),
            accepts=frozenset({self.location}),
            outbox=core.outbox + self._broadcast((P2A, core.attempt, chosen)),
        )

    def _check_accepts(self, core: PaxosState) -> PaxosState:
        if core.phase != 2 or len(core.accepts) < self.majority:
            return core
        value = core.attempt_value
        return replace(
            core,
            decided_value=value,
            decide_broadcast=True,
            attempt=None,
            phase=0,
            outbox=core.outbox + self._broadcast((DECIDE_MSG, value)),
        )

    # -- Transitions ------------------------------------------------------------------

    def core_initial(self) -> State:
        return PaxosState()

    def core_apply(self, core: PaxosState, action: Action) -> PaxosState:
        if action.name == PROPOSE:
            if core.value is None:
                core = replace(core, value=action.payload[0])
                core = self._maybe_start(core)
            return core
        if action.name == self.fd_output_name:
            core = replace(core, leader=action.payload[0])
            return self._maybe_start(core)
        if self.is_receive(action):
            message, sender = self.received_message(action)
            return self._on_message(core, message, sender)
        if action.name == "send":
            if core.outbox and action == core.outbox[0]:
                return replace(core, outbox=core.outbox[1:])
            return core
        if action.name == "decide":
            return replace(core, decided_out=True)
        return core

    def _on_message(self, core: PaxosState, message, sender: int) -> PaxosState:
        if not isinstance(message, tuple) or not message:
            return core
        tag = message[0]
        if tag == P1A:
            (_t, ballot) = message
            if core.promised is None or ballot > core.promised:
                return replace(
                    core,
                    promised=ballot,
                    outbox=core.outbox
                    + (self.send((P1B, ballot, core.accepted), sender),),
                )
            return replace(
                core,
                outbox=core.outbox
                + (self.send((NACK, ballot, core.promised), sender),),
            )
        if tag == P1B:
            (_t, ballot, accepted) = message
            if core.attempt == ballot and core.phase == 1:
                core = replace(
                    core, promises=core.promises | {(sender, accepted)}
                )
                return self._check_promises(core)
            return core
        if tag == P2A:
            (_t, ballot, value) = message
            if core.promised is None or ballot >= core.promised:
                return replace(
                    core,
                    promised=ballot,
                    accepted=(ballot, value),
                    outbox=core.outbox + (self.send((P2B, ballot), sender),),
                )
            return replace(
                core,
                outbox=core.outbox
                + (self.send((NACK, ballot, core.promised), sender),),
            )
        if tag == P2B:
            (_t, ballot) = message
            if core.attempt == ballot and core.phase == 2:
                core = replace(core, accepts=core.accepts | {sender})
                return self._check_accepts(core)
            return core
        if tag == NACK:
            (_t, ballot, their_promise) = message
            if core.attempt == ballot:
                core = replace(
                    core,
                    attempt=None,
                    phase=0,
                    ballot_counter=max(
                        core.ballot_counter, their_promise[0]
                    ),
                )
                return self._maybe_start(core)
            return core
        if tag == DECIDE_MSG:
            (_t, value) = message
            if core.decided_value is None:
                return replace(core, decided_value=value)
            return core
        return core

    def core_enabled(self, core: PaxosState) -> Iterable[Action]:
        if core.outbox:
            yield core.outbox[0]
        elif core.decided_value is not None and not core.decided_out:
            yield decide_action(self.location, core.decided_value)

    # -- Introspection -------------------------------------------------------------

    @staticmethod
    def decision(state: State) -> Optional[int]:
        """The decided value in a (failed, core) process state, or None."""
        _failed, core = state
        return core.decided_value if core.decided_out else None


def omega_consensus_algorithm(
    locations: Sequence[int],
    fd_output_name: str = OMEGA_OUTPUT,
) -> DistributedAlgorithm:
    """The Paxos-style Omega-consensus algorithm over ``locations``."""
    processes: Dict[int, ProcessAutomaton] = {
        i: OmegaConsensusProcess(i, locations, fd_output_name)
        for i in locations
    }
    return DistributedAlgorithm(processes)
