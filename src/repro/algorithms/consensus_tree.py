"""A small, quiescent consensus algorithm for the tagged-tree analysis.

Sections 8–9 build the tree of executions R^{t_D} of a system containing a
consensus algorithm driven by a fixed FD trace t_D.  For the tree's
reachable graph to be finite the algorithm must be quiescent (finitely
many sends per run) and deterministic (Section 2.5 requires process
automata to be deterministic — a single task).

The rotating-coordinator algorithm over P
(:mod:`repro.algorithms.consensus_perfect`) has both properties; this
module pins it down as the canonical tree-analysis instance and gives it
its own name so tree experiments read naturally.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.algorithms.consensus_perfect import PerfectConsensusProcess
from repro.detectors.perfect import PERFECT_OUTPUT
from repro.system.process import DistributedAlgorithm, ProcessAutomaton


class TreeConsensusProcess(PerfectConsensusProcess):
    """The rotating-coordinator process, named for tree experiments."""

    def __init__(
        self,
        location: int,
        locations: Sequence[int],
        fd_output_name: str = PERFECT_OUTPUT,
    ):
        super().__init__(location, locations, fd_output_name)
        self.name = f"treecons[{location}]"


def tree_consensus_algorithm(
    locations: Sequence[int],
    fd_output_name: str = PERFECT_OUTPUT,
) -> DistributedAlgorithm:
    """The tree-analysis consensus algorithm over ``locations``."""
    processes: Dict[int, ProcessAutomaton] = {
        i: TreeConsensusProcess(i, locations, fd_output_name)
        for i in locations
    }
    return DistributedAlgorithm(processes)
