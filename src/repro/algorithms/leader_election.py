"""Terminating leader election from a consensus black box.

Each location's driver proposes its own ID into a consensus instance over
location IDs and announces the decision with a ``leader(l)_i`` output.
Consensus validity makes the elected leader a proposer (hence not crashed
initially), agreement makes the election unanimous, and termination makes
every live location announce — the
:class:`repro.problems.leader_election.LeaderElectionProblem` guarantees.

This is also the bounded-problem face of leader election (Section 7.3):
the composed system emits at most n ``leader`` outputs and then quiesces
(modulo the detector).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import State
from repro.ioa.signature import ActionSet, FiniteActionSet, PredicateActionSet
from repro.problems.leader_election import LEADER, leader_action
from repro.system.environment import DECIDE, PROPOSE, propose_action
from repro.system.process import DistributedAlgorithm, ProcessAutomaton


@dataclass(frozen=True)
class _DriverState:
    proposed: bool = False
    decided: Optional[int] = None
    announced: bool = False


class LeaderElectionDriver(ProcessAutomaton):
    """Proposes its own ID, announces the consensus decision as leader."""

    uses_channels = False  # the consensus instance does the messaging

    def __init__(self, location: int, locations: Sequence[int]):
        self.all_locations: Tuple[int, ...] = tuple(locations)
        super().__init__(location, name=f"elect[{location}]")

    def core_inputs(self) -> ActionSet:
        return PredicateActionSet(
            lambda a: a.name == DECIDE and a.location == self.location,
            f"decide at {self.location}",
        )

    def core_outputs(self) -> ActionSet:
        return FiniteActionSet(
            tuple(
                propose_action(self.location, l) for l in self.all_locations
            )
            + tuple(
                leader_action(self.location, l) for l in self.all_locations
            )
        )

    def core_initial(self) -> State:
        return _DriverState()

    def core_apply(self, core: _DriverState, action: Action) -> _DriverState:
        if action.name == PROPOSE:
            return replace(core, proposed=True)
        if action.name == DECIDE:
            return replace(core, decided=action.payload[0])
        if action.name == LEADER:
            return replace(core, announced=True)
        return core

    def core_enabled(self, core: _DriverState) -> Iterable[Action]:
        if not core.proposed:
            yield propose_action(self.location, self.location)
        elif core.decided is not None and not core.announced:
            yield leader_action(self.location, core.decided)

    @staticmethod
    def elected(state: State) -> Optional[int]:
        """The announced leader, or None."""
        _failed, core = state
        return core.decided if core.announced else None


def leader_election_algorithm(
    locations: Sequence[int],
) -> DistributedAlgorithm:
    """The driver collection; compose with a consensus algorithm over
    ``values=locations`` (e.g. ``perfect_consensus_algorithm(locations,
    values=locations)``) plus its detector and channels."""
    processes: Dict[int, ProcessAutomaton] = {
        i: LeaderElectionDriver(i, locations) for i in locations
    }
    return DistributedAlgorithm(processes)
