"""Non-blocking atomic commit over P plus a consensus black box.

The standard two-phase construction:

1. *vote exchange* — one P-emulated round
   (:mod:`repro.algorithms.rounds`): every location broadcasts its vote
   and collects the others' (or suspicions);
2. *outcome agreement* — each location proposes 1 (commit) to a binary
   consensus instance iff it received a YES vote from *every* location,
   and 0 (abort) otherwise; the consensus decision is announced as the
   verdict.

NBAC's properties reduce to consensus properties: *agreement* is
consensus agreement; *commit-validity* holds because a 1-proposal
witnesses n YES votes (consensus validity); *abort-validity* holds
because when all vote YES and nobody crashes, P's accuracy means nobody
is skipped, so every proposal is 1 and consensus must decide 1;
*termination* is consensus termination plus round-engine termination.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Hashable, Iterable, Optional, Sequence

from repro.ioa.actions import Action
from repro.ioa.signature import ActionSet, FiniteActionSet
from repro.algorithms.rounds import NOT_READY, SynchronousRoundProcess
from repro.detectors.perfect import PERFECT_OUTPUT
from repro.problems.atomic_commit import (
    ABORT,
    COMMIT,
    NO,
    VOTE,
    YES,
    abort_action,
    commit_action,
    vote_action,
)
from repro.system.environment import DECIDE, PROPOSE, propose_action
from repro.system.process import DistributedAlgorithm, ProcessAutomaton


@dataclass(frozen=True)
class NbacApp:
    """Application state of one NBAC process."""

    vote: Optional[int] = None
    all_yes: Optional[bool] = None  # known after the vote round
    proposed: bool = False
    decided: Optional[int] = None  # consensus outcome
    verdict_out: bool = False


class NbacProcess(SynchronousRoundProcess):
    """One location of the NBAC construction (vote round + driver)."""

    message_tag = "nbac-vote"
    num_rounds = 1

    def __init__(
        self,
        location: int,
        locations: Sequence[int],
        fd_output_name: str = PERFECT_OUTPUT,
    ):
        super().__init__(
            location, locations, fd_output_name, name=f"nbac[{location}]"
        )

    # -- Signature additions ---------------------------------------------------

    def extra_inputs(self) -> ActionSet:
        return FiniteActionSet(
            (
                vote_action(self.location, YES),
                vote_action(self.location, NO),
                Action(DECIDE, self.location, (0,)),
                Action(DECIDE, self.location, (1,)),
            )
        )

    def core_outputs(self) -> ActionSet:
        return FiniteActionSet(
            (
                propose_action(self.location, 0),
                propose_action(self.location, 1),
                commit_action(self.location),
                abort_action(self.location),
            )
        )

    # -- Hooks ---------------------------------------------------------------------

    def app_initial(self) -> NbacApp:
        return NbacApp()

    def on_input(self, app: NbacApp, action: Action) -> NbacApp:
        if action.name == VOTE and app.vote is None:
            return replace(app, vote=action.payload[0])
        if action.name == PROPOSE:
            return replace(app, proposed=True)
        if action.name == DECIDE:
            return replace(app, decided=action.payload[0])
        if action.name in (COMMIT, ABORT):
            return replace(app, verdict_out=True)
        return app

    def start_payload(self, app: NbacApp):
        return app.vote if app.vote is not None else NOT_READY

    def fold_round(
        self, app: NbacApp, completed_round: int, received: Dict[int, int]
    ) -> NbacApp:
        # A skipped location (crashed before its vote arrived) counts
        # against commit, as does any NO vote.
        everyone_heard = len(received) == len(self.all_locations) - 1
        all_yes = (
            everyone_heard
            and app.vote == YES
            and all(v == YES for v in received.values())
        )
        return replace(app, all_yes=all_yes)

    def next_payload(self, app: NbacApp, upcoming_round: int):
        return app.vote  # unreachable with num_rounds == 1; kept total

    def final_output(self, app: NbacApp) -> Optional[Action]:
        if not app.proposed:
            return propose_action(self.location, 1 if app.all_yes else 0)
        return None

    def post_final_enabled(self, app: NbacApp) -> Iterable[Action]:
        if app.decided is not None and not app.verdict_out:
            if app.decided == 1:
                yield commit_action(self.location)
            else:
                yield abort_action(self.location)

    # -- Introspection -------------------------------------------------------------

    @staticmethod
    def verdict(state) -> Optional[str]:
        """COMMIT/ABORT once output, else None."""
        _failed, core = state
        if not core.app.verdict_out:
            return None
        return COMMIT if core.app.decided == 1 else ABORT


def nbac_algorithm(
    locations: Sequence[int],
    fd_output_name: str = PERFECT_OUTPUT,
) -> DistributedAlgorithm:
    """The NBAC drivers; compose with a binary consensus algorithm (e.g.
    ``perfect_consensus_algorithm(locations)``), the detector, channels
    and the crash automaton."""
    processes: Dict[int, ProcessAutomaton] = {
        i: NbacProcess(i, locations, fd_output_name) for i in locations
    }
    return DistributedAlgorithm(processes)
