"""Rotating-coordinator binary consensus using the perfect detector P.

Tolerates any number f < n of crashes.  The protocol runs n rounds; round
r's coordinator is ``locations[r-1]``:

* entering round r, the coordinator broadcasts its current estimate
  ("est", r, v) to all other locations, then advances;
* a non-coordinator in round r waits until it either receives the round-r
  estimate (and adopts it) or its latest P output suspects the
  coordinator (and it keeps its estimate); then it advances;
* after round n every process decides its estimate and halts.

Correctness under T_P: *strong accuracy* means a live coordinator is never
suspected, so in the first round r* with a live coordinator every live
process adopts that coordinator's estimate — after r* all estimates agree,
and later rounds preserve the common value.  *Strong completeness* makes
every wait on a crashed coordinator terminate.  Hence agreement, validity,
termination (Section 9.1's specification) hold whenever the FD events lie
in T_P — exactly the implication "A solves consensus using P".

The algorithm is *quiescent*: once decided, a process has no enabled
actions, a property the bounded-problem analysis (Lemma 23) and the tagged
tree of Section 8 both rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import State
from repro.ioa.signature import ActionSet, FiniteActionSet, PredicateActionSet
from repro.detectors.perfect import PERFECT_OUTPUT
from repro.system.environment import PROPOSE, decide_action
from repro.system.process import DistributedAlgorithm, ProcessAutomaton

EST = "est"  # message tag


@dataclass(frozen=True)
class RoundState:
    """Core state of one rotating-coordinator process."""

    value: Optional[int] = None
    round: int = 1
    suspects: Tuple[int, ...] = ()
    estimates: FrozenSet[Tuple[int, int]] = frozenset()  # (round, value)
    outbox: Tuple[Action, ...] = ()
    decided: bool = False


class PerfectConsensusProcess(ProcessAutomaton):
    """One location's automaton; see the module docstring for the protocol."""

    def __init__(
        self,
        location: int,
        locations: Sequence[int],
        fd_output_name: str = PERFECT_OUTPUT,
        values: Sequence[int] = (0, 1),
    ):
        self.all_locations: Tuple[int, ...] = tuple(locations)
        self.fd_output_name = fd_output_name
        self.num_rounds = len(self.all_locations)
        self.values = tuple(values)
        super().__init__(location, name=f"consP[{location}]")

    # -- Protocol geometry -------------------------------------------------

    def coordinator(self, round_number: int) -> int:
        return self.all_locations[round_number - 1]

    def owns_message(self, message) -> bool:
        # Own only the protocol's EST messages so other message-passing
        # layers can share the location (e.g. the NBAC vote round).
        return (
            isinstance(message, tuple)
            and len(message) == 3
            and message[0] == EST
        )

    # -- Signature -----------------------------------------------------------

    def core_inputs(self) -> ActionSet:
        return PredicateActionSet(
            lambda a: a.location == self.location
            and a.name in (PROPOSE, self.fd_output_name),
            f"propose/fd at {self.location}",
        )

    def core_outputs(self) -> ActionSet:
        return FiniteActionSet(
            tuple(decide_action(self.location, v) for v in self.values)
        )

    # -- Helpers ----------------------------------------------------------------

    def _broadcast(self, round_number: int, value: int) -> Tuple[Action, ...]:
        return tuple(
            self.send((EST, round_number, value), j)
            for j in self.all_locations
            if j != self.location
        )

    def _advance(self, core: RoundState) -> RoundState:
        """Adopt the round estimate if present, move to the next round, and
        queue the broadcast if this process coordinates the new round."""
        est = next(
            (v for (r, v) in core.estimates if r == core.round), None
        )
        value = core.value
        if est is not None and self.coordinator(core.round) != self.location:
            value = est
        new_round = core.round + 1
        outbox = core.outbox
        if (
            new_round <= self.num_rounds
            and self.coordinator(new_round) == self.location
        ):
            outbox = outbox + self._broadcast(new_round, value)
        return RoundState(
            value, new_round, core.suspects, core.estimates, outbox,
            core.decided,
        )

    def _can_advance(self, core: RoundState) -> bool:
        if core.value is None or core.round > self.num_rounds:
            return False
        if core.outbox:
            return False  # drain sends first (single-task priority)
        coordinator = self.coordinator(core.round)
        if coordinator == self.location:
            return True
        if any(r == core.round for (r, _v) in core.estimates):
            return True
        return coordinator in core.suspects

    # -- Transitions ---------------------------------------------------------------

    def core_initial(self) -> State:
        return RoundState()

    def core_apply(self, core: RoundState, action: Action) -> RoundState:
        # States are rebuilt positionally rather than via
        # ``dataclasses.replace`` — this is the hottest apply in the
        # tree/valence kernels and ``replace``'s per-call field scan
        # dominated it.
        if action.name == PROPOSE:
            if core.value is not None:
                return core
            value = action.payload[0]
            outbox = core.outbox
            if self.coordinator(1) == self.location and core.round == 1:
                outbox = outbox + self._broadcast(1, value)
            return RoundState(
                value, core.round, core.suspects, core.estimates, outbox,
                core.decided,
            )
        if action.name == self.fd_output_name:
            return RoundState(
                core.value, core.round, tuple(action.payload[0]),
                core.estimates, core.outbox, core.decided,
            )
        if self.is_receive(action):
            message, sender = self.received_message(action)
            if (
                isinstance(message, tuple)
                and len(message) == 3
                and message[0] == EST
            ):
                _tag, round_number, value = message
                if sender == self.coordinator(round_number):
                    return RoundState(
                        core.value, core.round, core.suspects,
                        core.estimates | {(round_number, value)},
                        core.outbox, core.decided,
                    )
            return core
        if action.name == "send":
            if core.outbox and action == core.outbox[0]:
                return RoundState(
                    core.value, core.round, core.suspects, core.estimates,
                    core.outbox[1:], core.decided,
                )
            return core
        if action.name == "advance" and action.location == self.location:
            return self._advance(core)
        if action.name == "decide":
            return RoundState(
                core.value, core.round, core.suspects, core.estimates,
                core.outbox, True,
            )
        return core

    def core_enabled(self, core: RoundState) -> Iterable[Action]:
        if core.outbox:
            yield core.outbox[0]
        elif self._can_advance(core):
            yield Action("advance", self.location, (core.round,))
        elif (
            core.value is not None
            and core.round > self.num_rounds
            and not core.decided
        ):
            yield decide_action(self.location, core.value)

    def core_internals(self) -> ActionSet:
        return PredicateActionSet(
            lambda a: a.name == "advance" and a.location == self.location,
            f"advance_{self.location}",
        )

    # -- Introspection -------------------------------------------------------------

    @staticmethod
    def decision(state: State) -> Optional[int]:
        """The decided value visible in a (failed, core) process state, or
        None if this process has not decided."""
        _failed, core = state
        return core.value if core.decided else None


def perfect_consensus_algorithm(
    locations: Sequence[int],
    fd_output_name: str = PERFECT_OUTPUT,
    values: Sequence[int] = (0, 1),
) -> DistributedAlgorithm:
    """The rotating-coordinator algorithm over ``locations``."""
    processes: Dict[int, ProcessAutomaton] = {
        i: PerfectConsensusProcess(i, locations, fd_output_name, values)
        for i in locations
    }
    return DistributedAlgorithm(processes)
