"""Generic detector-output relays: the engine behind ⪰ reductions.

A :class:`TransformRelayProcess` at location i consumes the outputs of a
source AFD at i and emits outputs of a target AFD at i, computed by a pure
transformation function.  Like Algorithm 3 (which is the special case
where the transformation is a renaming), it buffers inputs in a FIFO queue
so no source output is lost and emission order is preserved per location —
the structure the closure properties of AFDs are built around.

All the classic reductions among the zoo detectors (P ⪰ ◇P, P ⪰ Omega,
◇P ⪰ Omega, Omega ⪰ anti-Omega, Omega ⪰ Omega^k, P ⪰ Sigma, P ⪰ Psi^k,
...) are expressible as per-event transformations of this shape; see
:func:`repro.detectors.registry.known_reductions`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence

from repro.ioa.actions import Action
from repro.ioa.automaton import State
from repro.ioa.signature import ActionSet, PredicateActionSet
from repro.core.afd import AFD
from repro.system.process import DistributedAlgorithm, ProcessAutomaton

#: ``transform(input_action) -> output_action or None`` (None: drop).
Transform = Callable[[Action], Optional[Action]]


class TransformRelayProcess(ProcessAutomaton):
    """Consume source-detector outputs at one location, emit transformed
    target-detector outputs.

    Core state: the FIFO tuple of already-transformed actions awaiting
    emission.
    """

    uses_channels = False  # pure detector transformation: no messages

    def __init__(
        self,
        location: int,
        source: AFD,
        target: AFD,
        transform: Transform,
        name: str = "",
    ):
        self.source = source
        self.target = target
        self.transform = transform
        super().__init__(
            location, name=name or f"relay[{source.name}->{target.name}][{location}]"
        )

    # -- Signature -----------------------------------------------------------

    def core_inputs(self) -> ActionSet:
        return PredicateActionSet(
            lambda a: (
                self.source.is_output(a) and a.location == self.location
            ),
            f"O_{self.source.name} at {self.location}",
        )

    def core_outputs(self) -> ActionSet:
        return PredicateActionSet(
            lambda a: (
                self.target.is_output(a) and a.location == self.location
            ),
            f"O_{self.target.name} at {self.location}",
        )

    # -- Transitions -----------------------------------------------------------

    def core_initial(self) -> State:
        return ()

    def core_apply(self, core: State, action: Action) -> State:
        if self.source.is_output(action) and action.location == self.location:
            transformed = self.transform(action)
            if transformed is None:
                return core
            if transformed.location != self.location:
                raise ValueError(
                    f"relay transform moved an event across locations: "
                    f"{action} -> {transformed}"
                )
            return core + (transformed,)
        if core and action == core[0]:
            return core[1:]
        return core

    def core_enabled(self, core: State) -> Iterable[Action]:
        if core:
            yield core[0]


def relay_algorithm(
    source: AFD,
    target: AFD,
    transform_factory: Callable[[int], Transform],
) -> DistributedAlgorithm:
    """A distributed algorithm of relays, one per location.

    ``transform_factory(location)`` builds the per-location transformation
    (most transformations ignore the location, but e.g. renamings of
    located vocabularies may not).
    """
    processes: Dict[int, ProcessAutomaton] = {
        i: TransformRelayProcess(i, source, target, transform_factory(i))
        for i in source.locations
    }
    return DistributedAlgorithm(processes)
