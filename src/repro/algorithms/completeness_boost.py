"""Boosting weak completeness to strong completeness (Chandra–Toueg [5]).

The classic distributed transformation: every process merges its local
(weak-completeness) detector module's suspicions into a running set,
gossips the set to everyone, removes a location from the set whenever a
message *from* that location arrives (evidence of life), and continually
emits the merged set.  The emitted sets satisfy strong completeness while
preserving the source's accuracy:

* *strong completeness* — a faulty j is eventually permanently suspected
  by some live i (weak completeness of the source); i keeps gossiping; j
  sends only finitely many messages, so after j's last message every live
  process permanently holds j;
* *accuracy preservation* — emitted sets are unions of source sets minus
  evidenced-alive senders, so a location the source never (or eventually
  never) suspects never (eventually never) appears.

This yields the message-passing reductions **Q ⪰ P**, **W ⪰ S**,
**◇Q ⪰ ◇P** and **◇W ⪰ ◇S** — unlike the per-event relays of
:mod:`repro.algorithms.relay`, these need the reliable FIFO channels of
Section 4.3.

Scheduling note: source events arrive once per scheduler cycle, so the
process must do bounded work per event.  Gossip and emission are
*coalesced*: source inputs only update the merged set and raise flags;
the single task then drains, in priority order, (1) the current outbox,
(2) one emission of the merged set, (3) one gossip reload.  Emissions
therefore recur at least once every n+1 turns — infinitely often, as
validity requires — and gossip also recurs forever.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterable, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import State
from repro.ioa.signature import ActionSet, PredicateActionSet
from repro.core.afd import AFD
from repro.detectors.base import sorted_tuple
from repro.system.process import DistributedAlgorithm, ProcessAutomaton

GOSSIP = "fd-gossip"
RELOAD = "boost-reload"


@dataclass(frozen=True)
class BoostState:
    """Core state of one boosting process.

    ``emit_turn`` alternates the two recurring duties (emission and
    gossip reload): source inputs re-raise both flags every scheduler
    cycle, so a fixed priority would starve whichever duty came second.
    """

    suspects: FrozenSet[int] = frozenset()
    outbox: Tuple[Action, ...] = ()
    want_emit: bool = False
    want_gossip: bool = False
    emit_turn: bool = True


class BoostCompletenessProcess(ProcessAutomaton):
    """One location of the completeness-boosting transformation."""

    def __init__(self, location: int, source: AFD, target: AFD):
        self.source = source
        self.target = target
        self.all_locations = tuple(source.locations)
        super().__init__(location, name=f"boost[{location}]")

    def owns_message(self, message) -> bool:
        return (
            isinstance(message, tuple)
            and len(message) == 2
            and message[0] == GOSSIP
        )

    def core_inputs(self) -> ActionSet:
        return PredicateActionSet(
            lambda a: self.source.is_output(a)
            and a.location == self.location,
            f"O_{self.source.name} at {self.location}",
        )

    def core_outputs(self) -> ActionSet:
        return PredicateActionSet(
            lambda a: self.target.is_output(a)
            and a.location == self.location,
            f"O_{self.target.name} at {self.location}",
        )

    def core_internals(self) -> ActionSet:
        return PredicateActionSet(
            lambda a: a.name == RELOAD and a.location == self.location,
            f"{RELOAD}_{self.location}",
        )

    # -- Transitions -----------------------------------------------------------

    def core_initial(self) -> State:
        return BoostState()

    def _emission(self, suspects: FrozenSet[int]) -> Action:
        return Action(
            self.target.output_name,
            self.location,
            (sorted_tuple(suspects),),
        )

    def core_apply(self, core: BoostState, action: Action) -> BoostState:
        if (
            self.source.is_output(action)
            and action.location == self.location
        ):
            suspects = core.suspects | set(action.payload[0])
            return replace(
                core,
                suspects=frozenset(suspects),
                want_emit=True,
                want_gossip=True,
            )
        if self.is_receive(action):
            message, sender = self.received_message(action)
            if self.owns_message(message):
                suspects = (core.suspects | set(message[1])) - {sender}
                return replace(
                    core,
                    suspects=frozenset(suspects),
                    want_emit=True,
                    want_gossip=True,
                )
            return core
        if action.name == "send":
            if core.outbox and action == core.outbox[0]:
                return replace(core, outbox=core.outbox[1:])
            return core
        if action.name == self.target.output_name:
            return replace(core, want_emit=False, emit_turn=False)
        if action.name == RELOAD:
            gossip = tuple(
                self.send((GOSSIP, sorted_tuple(core.suspects)), j)
                for j in self.all_locations
                if j != self.location
            )
            return replace(
                core,
                outbox=core.outbox + gossip,
                want_gossip=False,
                emit_turn=True,
            )
        return core

    def core_enabled(self, core: BoostState) -> Iterable[Action]:
        if core.outbox:
            yield core.outbox[0]
        elif core.want_emit and (core.emit_turn or not core.want_gossip):
            yield self._emission(core.suspects)
        elif core.want_gossip:
            yield Action(RELOAD, self.location)


def completeness_boost_algorithm(
    source: AFD, target: AFD
) -> DistributedAlgorithm:
    """The boosting algorithm over the source detector's locations."""
    processes: Dict[int, ProcessAutomaton] = {
        i: BoostCompletenessProcess(i, source, target)
        for i in source.locations
    }
    return DistributedAlgorithm(processes)
