"""The Chandra–Toueg ◇S consensus algorithm [5] (f < n/2).

The classic rotating-coordinator protocol that made failure detectors
famous, adapted to the unilateral AFD interface (suspect sets arrive as
inputs; the latest set is consulted instead of queried):

round r, coordinator c = locations[(r-1) mod n]:

1. every process sends its (estimate, timestamp) to c;
2. c collects a majority of estimates (its own included), adopts the one
   with the highest timestamp, and proposes it to everyone;
3. every process waits for c's round-r proposal *or* a suspect set
   containing c: on the proposal it adopts (estimate := proposal,
   timestamp := r) and acks; on suspicion it nacks; either way it enters
   round r+1 (sending its estimate to the next coordinator);
4. c collects round-r acks *passively* (they may arrive while it is in a
   later round); a majority of positive acks triggers a flooded,
   relay-once ``decide`` message, on whose first receipt every process
   decides.

Safety is the majority-locking argument: a decided value was adopted
with timestamp r by a majority, so every later coordinator's majority
estimate-collection intersects that majority and the highest-timestamp
estimate is the locked value.  Liveness needs ◇S: eventually some live
location is never suspected, so its next coordinating round gets acks
from every live process — a majority, as f < n/2.

Compared to :mod:`repro.algorithms.consensus_omega` (Paxos over Omega)
this uses strictly weaker detector information (◇S carries no leader
agreement), at the cost of cycling through coordinators.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import State
from repro.ioa.signature import ActionSet, FiniteActionSet, PredicateActionSet
from repro.detectors.strong import EVENTUALLY_STRONG_OUTPUT
from repro.system.environment import PROPOSE, decide_action
from repro.system.process import DistributedAlgorithm, ProcessAutomaton

EST = "ct-est"  # (EST, r, estimate, timestamp) -> coordinator
PROP = "ct-prop"  # (PROP, r, estimate) -> everyone
ACK = "ct-ack"  # (ACK, r, positive) -> coordinator
DEC = "ct-dec"  # (DEC, value) -> everyone, relay once

ADVANCE = "ct-advance"
COORD_PROPOSE = "ct-coord-propose"


@dataclass(frozen=True)
class CtState:
    """Core state of one Chandra–Toueg process."""

    value: Optional[int] = None  # the external proposal
    estimate: Optional[int] = None
    timestamp: int = 0
    round: int = 0  # 0 until the external proposal arrives
    suspects: Tuple[int, ...] = ()
    # (round, sender, estimate, timestamp) collected as coordinator:
    estimates: FrozenSet[Tuple[int, int, int, int]] = frozenset()
    proposed_rounds: FrozenSet[int] = frozenset()
    # (round, estimate) proposals received from coordinators:
    proposals: FrozenSet[Tuple[int, int]] = frozenset()
    # (round, sender, positive) acks collected as coordinator:
    acks: FrozenSet[Tuple[int, int, bool]] = frozenset()
    decide_sent_rounds: FrozenSet[int] = frozenset()
    decided_value: Optional[int] = None
    relayed_decide: bool = False
    decided_out: bool = False
    outbox: Tuple[Action, ...] = ()


class CtConsensusProcess(ProcessAutomaton):
    """One location of the ◇S rotating-coordinator algorithm."""

    def __init__(
        self,
        location: int,
        locations: Sequence[int],
        fd_output_name: str = EVENTUALLY_STRONG_OUTPUT,
        values: Sequence[int] = (0, 1),
    ):
        self.all_locations: Tuple[int, ...] = tuple(locations)
        self.fd_output_name = fd_output_name
        self.values = tuple(values)
        super().__init__(location, name=f"consCT[{location}]")

    # -- Geometry ------------------------------------------------------------

    @property
    def majority(self) -> int:
        return len(self.all_locations) // 2 + 1

    def coordinator(self, round_number: int) -> int:
        n = len(self.all_locations)
        return self.all_locations[(round_number - 1) % n]

    def owns_message(self, message) -> bool:
        return (
            isinstance(message, tuple)
            and bool(message)
            and message[0] in (EST, PROP, ACK, DEC)
        )

    # -- Signature ------------------------------------------------------------

    def core_inputs(self) -> ActionSet:
        return PredicateActionSet(
            lambda a: a.location == self.location
            and a.name in (PROPOSE, self.fd_output_name),
            f"propose/fd at {self.location}",
        )

    def core_outputs(self) -> ActionSet:
        return FiniteActionSet(
            tuple(decide_action(self.location, v) for v in self.values)
        )

    def core_internals(self) -> ActionSet:
        return PredicateActionSet(
            lambda a: a.name in (ADVANCE, COORD_PROPOSE)
            and a.location == self.location,
            f"ct internals at {self.location}",
        )

    # -- Round plumbing ---------------------------------------------------------

    def _send_or_keep(self, message, destination: int) -> Tuple[Action, ...]:
        """Send to a peer; a message to self is handled by local state
        updates instead (empty send tuple)."""
        if destination == self.location:
            return ()
        return (self.send(message, destination),)

    def _enter_round(self, core: CtState, round_number: int) -> CtState:
        """Move to ``round_number`` and dispatch the phase-1 estimate."""
        coordinator = self.coordinator(round_number)
        message = (EST, round_number, core.estimate, core.timestamp)
        core = replace(
            core,
            round=round_number,
            outbox=core.outbox + self._send_or_keep(message, coordinator),
        )
        if coordinator == self.location:
            core = replace(
                core,
                estimates=core.estimates
                | {
                    (
                        round_number,
                        self.location,
                        core.estimate,
                        core.timestamp,
                    )
                },
            )
        return core

    def _record_estimate(
        self, core: CtState, round_number, sender, estimate, timestamp
    ) -> CtState:
        return replace(
            core,
            estimates=core.estimates
            | {(round_number, sender, estimate, timestamp)},
        )

    def _maybe_coordinator_propose(self, core: CtState) -> bool:
        """Whether the coordinator-propose step is enabled for some round."""
        return self._proposable_round(core) is not None

    def _proposable_round(self, core: CtState) -> Optional[int]:
        rounds = {
            r
            for (r, _s, _e, _t) in core.estimates
            if r not in core.proposed_rounds
            and self.coordinator(r) == self.location
        }
        for r in sorted(rounds):
            if (
                sum(1 for (rr, *_x) in core.estimates if rr == r)
                >= self.majority
            ):
                return r
        return None

    def _coordinator_propose(self, core: CtState) -> CtState:
        r = self._proposable_round(core)
        assert r is not None
        candidates = [
            (t, e) for (rr, _s, e, t) in core.estimates if rr == r
        ]
        _ts, estimate = max(candidates)
        outbox = core.outbox
        for j in self.all_locations:
            outbox = outbox + self._send_or_keep((PROP, r, estimate), j)
        core = replace(
            core,
            proposed_rounds=core.proposed_rounds | {r},
            outbox=outbox,
            # The coordinator "receives" its own proposal immediately.
            proposals=core.proposals | {(r, estimate)},
        )
        return core

    def _current_proposal(self, core: CtState) -> Optional[int]:
        for (r, estimate) in core.proposals:
            if r == core.round:
                return estimate
        return None

    def _can_advance(self, core: CtState) -> bool:
        if core.round < 1 or core.decided_value is not None:
            return False
        if self._current_proposal(core) is not None:
            return True
        return self.coordinator(core.round) in core.suspects

    def _advance(self, core: CtState) -> CtState:
        """Phase 3: adopt-and-ack or nack, then enter the next round."""
        r = core.round
        coordinator = self.coordinator(r)
        proposal = self._current_proposal(core)
        if proposal is not None:
            core = replace(
                core,
                estimate=proposal,
                timestamp=r,
                outbox=core.outbox
                + self._send_or_keep((ACK, r, True), coordinator),
            )
            if coordinator == self.location:
                core = self._record_ack(core, r, self.location, True)
        else:
            core = replace(
                core,
                outbox=core.outbox
                + self._send_or_keep((ACK, r, False), coordinator),
            )
        return self._enter_round(core, r + 1)

    def _record_ack(
        self, core: CtState, round_number, sender, positive
    ) -> CtState:
        core = replace(
            core, acks=core.acks | {(round_number, sender, positive)}
        )
        # Phase 4, passively: a majority of positive round-r acks decides.
        if round_number in core.decide_sent_rounds:
            return core
        positives = sum(
            1
            for (r, _s, p) in core.acks
            if r == round_number and p
        )
        if positives >= self.majority:
            estimate = next(
                e for (r, e) in core.proposals if r == round_number
            )
            core = self._learn_decision(core, estimate)
            core = replace(
                core,
                decide_sent_rounds=core.decide_sent_rounds
                | {round_number},
            )
        return core

    def _learn_decision(self, core: CtState, value: int) -> CtState:
        if core.decided_value is not None:
            return core
        outbox = core.outbox
        for j in self.all_locations:
            outbox = outbox + self._send_or_keep((DEC, value), j)
        return replace(
            core,
            decided_value=value,
            relayed_decide=True,
            outbox=outbox,
        )

    # -- Transitions -----------------------------------------------------------

    def core_initial(self) -> State:
        return CtState()

    def core_apply(self, core: CtState, action: Action) -> CtState:
        if action.name == PROPOSE:
            if core.value is None:
                core = replace(
                    core,
                    value=action.payload[0],
                    estimate=action.payload[0],
                )
                core = self._enter_round(core, 1)
            return core
        if action.name == self.fd_output_name:
            return replace(core, suspects=tuple(action.payload[0]))
        if self.is_receive(action):
            message, sender = self.received_message(action)
            if not self.owns_message(message):
                return core
            tag = message[0]
            if tag == EST:
                _t, r, estimate, timestamp = message
                return self._record_estimate(
                    core, r, sender, estimate, timestamp
                )
            if tag == PROP:
                _t, r, estimate = message
                return replace(
                    core, proposals=core.proposals | {(r, estimate)}
                )
            if tag == ACK:
                _t, r, positive = message
                return self._record_ack(core, r, sender, positive)
            if tag == DEC:
                (_t, value) = message
                return self._learn_decision(core, value)
            return core
        if action.name == "send":
            if core.outbox and action == core.outbox[0]:
                return replace(core, outbox=core.outbox[1:])
            return core
        if action.name == COORD_PROPOSE and action.location == self.location:
            return self._coordinator_propose(core)
        if action.name == ADVANCE and action.location == self.location:
            return self._advance(core)
        if action.name == "decide":
            return replace(core, decided_out=True)
        return core

    def core_enabled(self, core: CtState) -> Iterable[Action]:
        if core.outbox:
            yield core.outbox[0]
        elif core.decided_value is not None and not core.decided_out:
            yield decide_action(self.location, core.decided_value)
        elif core.decided_value is not None:
            return  # decided: quiescent
        elif self._maybe_coordinator_propose(core):
            yield Action(COORD_PROPOSE, self.location)
        elif self._can_advance(core):
            yield Action(ADVANCE, self.location, (core.round,))

    # -- Introspection -------------------------------------------------------------

    @staticmethod
    def decision(state: State) -> Optional[int]:
        _failed, core = state
        return core.decided_value if core.decided_out else None


def ct_consensus_algorithm(
    locations: Sequence[int],
    fd_output_name: str = EVENTUALLY_STRONG_OUTPUT,
    values: Sequence[int] = (0, 1),
) -> DistributedAlgorithm:
    """The Chandra–Toueg ◇S algorithm over ``locations``."""
    processes: Dict[int, ProcessAutomaton] = {
        i: CtConsensusProcess(i, locations, fd_output_name, values)
        for i in locations
    }
    return DistributedAlgorithm(processes)
