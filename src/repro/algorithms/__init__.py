"""Distributed algorithms that use AFDs.

* :mod:`repro.algorithms.relay` — generic per-location transformations of
  detector outputs (the engine behind the ⪰ reductions of Section 7.1);
* :mod:`repro.algorithms.completeness_boost` — the Chandra-Toueg [5]
  message-passing boost from weak to strong completeness (Q ⪰ P, W ⪰ S
  and the eventual variants);
* :mod:`repro.algorithms.consensus_perfect` — rotating-coordinator binary
  consensus using P (tolerates f < n crashes);
* :mod:`repro.algorithms.consensus_omega` — Paxos-style binary consensus
  using Omega (tolerates f < n/2 crashes), the paper's Section 9 setting;
* :mod:`repro.algorithms.consensus_tree` — a tiny quiescent consensus
  algorithm with finite reachable state space, used by the tagged-tree /
  valence / hook analysis of Sections 8-9;
* :mod:`repro.algorithms.rounds` — communication-closed synchronous
  rounds emulated over P;
* :mod:`repro.algorithms.kset_floodmin` — FloodMin k-set agreement;
* :mod:`repro.algorithms.trb_flooding` — terminating reliable broadcast;
* :mod:`repro.algorithms.leader_election` — one-shot leader election from
  a consensus black box;
* :mod:`repro.algorithms.atomic_commit` — NBAC from a vote round plus a
  consensus black box;
* :mod:`repro.algorithms.participant_consensus` — the two reductions of
  Section 10.1 between consensus and the query-based participant
  detector.
"""

from repro.algorithms.relay import TransformRelayProcess, relay_algorithm
from repro.algorithms.completeness_boost import (
    BoostCompletenessProcess,
    completeness_boost_algorithm,
)
from repro.algorithms.consensus_perfect import (
    PerfectConsensusProcess,
    perfect_consensus_algorithm,
)
from repro.algorithms.consensus_ct import (
    CtConsensusProcess,
    ct_consensus_algorithm,
)
from repro.algorithms.consensus_omega import (
    OmegaConsensusProcess,
    omega_consensus_algorithm,
)
from repro.algorithms.consensus_tree import (
    TreeConsensusProcess,
    tree_consensus_algorithm,
)
from repro.algorithms.rounds import NOT_READY, SynchronousRoundProcess
from repro.algorithms.kset_floodmin import FloodMinProcess, floodmin_algorithm
from repro.algorithms.trb_flooding import (
    TrbFloodingProcess,
    trb_flooding_algorithm,
)
from repro.algorithms.leader_election import (
    LeaderElectionDriver,
    leader_election_algorithm,
)
from repro.algorithms.atomic_commit import NbacProcess, nbac_algorithm
from repro.algorithms.urb import UrbProcess, urb_algorithm
from repro.algorithms.participant_consensus import (
    ConsensusFromParticipantProcess,
    ParticipantFromConsensusProcess,
    consensus_from_participant_algorithm,
    participant_from_consensus_algorithm,
)

__all__ = [
    "TransformRelayProcess",
    "relay_algorithm",
    "BoostCompletenessProcess",
    "completeness_boost_algorithm",
    "PerfectConsensusProcess",
    "perfect_consensus_algorithm",
    "OmegaConsensusProcess",
    "omega_consensus_algorithm",
    "CtConsensusProcess",
    "ct_consensus_algorithm",
    "TreeConsensusProcess",
    "tree_consensus_algorithm",
    "NOT_READY",
    "SynchronousRoundProcess",
    "FloodMinProcess",
    "floodmin_algorithm",
    "TrbFloodingProcess",
    "trb_flooding_algorithm",
    "LeaderElectionDriver",
    "leader_election_algorithm",
    "NbacProcess",
    "nbac_algorithm",
    "UrbProcess",
    "urb_algorithm",
    "ConsensusFromParticipantProcess",
    "ParticipantFromConsensusProcess",
    "consensus_from_participant_algorithm",
    "participant_from_consensus_algorithm",
]
