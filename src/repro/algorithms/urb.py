"""Majority-echo uniform reliable broadcast (f < n/2, no detector).

The classic all-ack algorithm: on a broadcast (or on first hearing a
message), a process *echoes* it to everyone; a message is delivered once
echoes from a majority of locations have been observed (counting one's
own).  Uniform agreement follows from majority intersection: delivery
anywhere means a majority echoed, at least one of whom is live; a live
echoer's echo reaches every live process, each of which then echoes,
giving every live process a (live) majority of echoes eventually.

URB is solvable *without any failure detector* when f < n/2 — which is
precisely why it contrasts with the bounded problems: its information
content about crashes is nil, yet it is long-lived (unbounded outputs),
so the bounded-problem machinery of Section 7.3 does not apply to it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Hashable, Iterable, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import State
from repro.ioa.signature import ActionSet, PredicateActionSet
from repro.problems.uniform_broadcast import (
    URB_BCAST,
    URB_DELIVER,
    urb_deliver_action,
)
from repro.system.process import DistributedAlgorithm, ProcessAutomaton

ECHO = "urb-echo"

Key = Tuple[int, Hashable]  # (source, message)


@dataclass(frozen=True)
class UrbState:
    """Core state of one URB process."""

    echoes: FrozenSet[Tuple[int, Hashable, int]] = frozenset()
    relayed: FrozenSet[Key] = frozenset()
    delivered: FrozenSet[Key] = frozenset()
    outbox: Tuple[Action, ...] = ()


class UrbProcess(ProcessAutomaton):
    """One location of the majority-echo URB algorithm."""

    def __init__(self, location: int, locations: Sequence[int]):
        self.all_locations: Tuple[int, ...] = tuple(locations)
        super().__init__(location, name=f"urb[{location}]")

    @property
    def majority(self) -> int:
        return len(self.all_locations) // 2 + 1

    def owns_message(self, message) -> bool:
        return (
            isinstance(message, tuple)
            and len(message) == 3
            and message[0] == ECHO
        )

    def core_inputs(self) -> ActionSet:
        return PredicateActionSet(
            lambda a: a.name == URB_BCAST and a.location == self.location,
            f"urb-bcast at {self.location}",
        )

    def core_outputs(self) -> ActionSet:
        return PredicateActionSet(
            lambda a: a.name == URB_DELIVER and a.location == self.location,
            f"urb-deliver at {self.location}",
        )

    # -- Transitions -----------------------------------------------------------

    def core_initial(self) -> State:
        return UrbState()

    def _relay(self, core: UrbState, source: int, message) -> UrbState:
        """First sighting of (source, message): echo it to everyone."""
        key = (source, message)
        if key in core.relayed:
            return core
        sends = tuple(
            self.send((ECHO, source, message), j)
            for j in self.all_locations
            if j != self.location
        )
        return replace(
            core,
            relayed=core.relayed | {key},
            echoes=core.echoes | {(source, message, self.location)},
            outbox=core.outbox + sends,
        )

    def core_apply(self, core: UrbState, action: Action) -> UrbState:
        if action.name == URB_BCAST and action.location == self.location:
            return self._relay(core, self.location, action.payload[0])
        if self.is_receive(action):
            message, sender = self.received_message(action)
            if self.owns_message(message):
                _tag, source, payload = message
                core = replace(
                    core,
                    echoes=core.echoes | {(source, payload, sender)},
                )
                return self._relay(core, source, payload)
            return core
        if action.name == "send":
            if core.outbox and action == core.outbox[0]:
                return replace(core, outbox=core.outbox[1:])
            return core
        if action.name == URB_DELIVER:
            message, source = action.payload
            return replace(
                core, delivered=core.delivered | {(source, message)}
            )
        return core

    def _deliverable(self, core: UrbState) -> Iterable[Key]:
        counts: Dict[Key, int] = {}
        for (source, message, _echoer) in core.echoes:
            key = (source, message)
            counts[key] = counts.get(key, 0) + 1
        for key in sorted(counts, key=repr):
            if counts[key] >= self.majority and key not in core.delivered:
                yield key

    def core_enabled(self, core: UrbState) -> Iterable[Action]:
        if core.outbox:
            yield core.outbox[0]
            return
        for (source, message) in self._deliverable(core):
            yield urb_deliver_action(self.location, message, source)
            return  # one at a time: single-task determinism

    # -- Introspection -------------------------------------------------------------

    @staticmethod
    def delivered_keys(state) -> FrozenSet[Key]:
        _failed, core = state
        return core.delivered


def urb_algorithm(locations: Sequence[int]) -> DistributedAlgorithm:
    """The majority-echo URB algorithm over ``locations``."""
    processes: Dict[int, ProcessAutomaton] = {
        i: UrbProcess(i, locations) for i in locations
    }
    return DistributedAlgorithm(processes)
