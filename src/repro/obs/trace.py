"""Structured event tracing for the simulation engine.

The scheduler resolves nondeterminism step by step; this module records
*what it resolved* as a sequence of typed events.  Two pieces:

* :class:`Observer` — the notification protocol the engine speaks.  Every
  method is a no-op here, so the engine can call any subclass without
  caring which events it cares about.  The engine guards every
  notification with ``if observer is not None``, so a run without an
  observer allocates nothing and pays only that predicate.
* :class:`TraceRecorder` — an observer that materializes notifications
  into :class:`TraceEvent` records with monotonic timestamps, classifies
  actions into the harness's event taxonomy (send / receive / crash /
  decision / fd-output / injection / action), supports nested span
  timers, and exports JSON Lines.

Event taxonomy (the ``kind`` field):

===============  ====================================================
``run-start``    a scheduler run began (``data.max_steps``)
``step``         a step was scheduled (only with ``record_steps=True``)
``injection``    an adversary-injected non-crash action fired
``crash``        a crash event fired
``send``         a ``send(m, j)_i`` action (``data.dst``)
``receive``      a ``receive(m, i)_j`` action (``data.src``)
``fd-output``    a failure-detector output action
``decision``     a ``decide`` action
``action``       any other action
``checker``      a specification checker verdict (``data.ok``)
``span-start``   a span timer opened
``span-end``     a span timer closed (``data.dur_s``)
``run-end``      the run ended (``data.reason``, ``data.steps``)
===============  ====================================================
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterator, List, Optional, Union

from repro.ioa.actions import Action

#: Action names with a dedicated event kind.
SEND = "send"
RECEIVE = "receive"
CRASH = "crash"
DECIDE = "decide"


class Observer:
    """The engine-side notification protocol; every method is a no-op.

    Subclass and override what you need.  The scheduler only ever calls
    these methods — it never inspects observer state — so any object with
    this interface can be attached to :class:`~repro.ioa.scheduler.Scheduler`
    or :class:`~repro.system.network.SystemBuilder`.
    """

    def on_run_start(self, automaton, max_steps: int) -> None:
        """A scheduler run is about to produce its first step."""

    def on_step_scheduled(self, step: int) -> None:
        """The scheduler is about to resolve step ``step``."""

    def on_action(self, step: int, action: Action, injected: bool) -> None:
        """``action`` fired as event number ``step`` of the run."""

    def on_run_end(self, steps: int, reason: str) -> None:
        """The run ended after ``steps`` events.

        ``reason`` is one of ``"max-steps"``, ``"quiescent"``,
        ``"stopped"`` (the ``stop_when`` predicate fired).
        """


class MultiObserver(Observer):
    """Fan one stream of notifications out to several observers.

    Also proxies the :class:`TraceRecorder` extras (``record``, ``span``)
    to whichever members support them, so callers can treat a fan-out
    like a single recorder.
    """

    def __init__(self, *observers: Observer):
        self.observers = tuple(observers)

    def record(self, kind: str, **kwargs: Any) -> None:
        for o in self.observers:
            rec = getattr(o, "record", None)
            if rec is not None:
                rec(kind, **kwargs)

    def span(self, name: str):
        from contextlib import ExitStack

        stack = ExitStack()
        for o in self.observers:
            member_span = getattr(o, "span", None)
            if member_span is not None:
                stack.enter_context(member_span(name))
        return stack

    def on_run_start(self, automaton, max_steps: int) -> None:
        for o in self.observers:
            o.on_run_start(automaton, max_steps)

    def on_step_scheduled(self, step: int) -> None:
        for o in self.observers:
            o.on_step_scheduled(step)

    def on_action(self, step: int, action: Action, injected: bool) -> None:
        for o in self.observers:
            o.on_action(step, action, injected)

    def on_run_end(self, steps: int, reason: str) -> None:
        for o in self.observers:
            o.on_run_end(steps, reason)


@dataclass
class TraceEvent:
    """One recorded event.

    ``t`` is seconds since the recorder was created (monotonic clock);
    ``span`` is the name of the innermost enclosing span, if any.
    """

    __slots__ = ("kind", "step", "location", "name", "span", "t", "data")

    kind: str
    step: Optional[int]
    location: Optional[int]
    name: Optional[str]
    span: Optional[str]
    t: float
    data: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"kind": self.kind, "t": round(self.t, 9)}
        if self.step is not None:
            d["step"] = self.step
        if self.location is not None:
            d["location"] = self.location
        if self.name is not None:
            d["name"] = self.name
        if self.span is not None:
            d["span"] = self.span
        if self.data:
            d["data"] = self.data
        return d


@dataclass
class SpanRecord:
    """A closed span: name, start time, and duration (seconds)."""

    name: str
    start: float
    dur_s: float


class _SpanHandle:
    """Context manager returned by :meth:`TraceRecorder.span`."""

    __slots__ = ("_recorder", "name", "_start")

    def __init__(self, recorder: "TraceRecorder", name: str):
        self._recorder = recorder
        self.name = name
        self._start = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._start = self._recorder._now()
        self._recorder._span_stack.append(self.name)
        self._recorder._append("span-start", None, None, self.name, {})
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur = self._recorder._now() - self._start
        self._recorder._append(
            "span-end", None, None, self.name, {"dur_s": round(dur, 9)}
        )
        self._recorder._span_stack.pop()
        self._recorder.spans.append(SpanRecord(self.name, self._start, dur))


class TraceRecorder(Observer):
    """Record engine notifications as typed, timestamped events.

    Parameters
    ----------
    fd_output_name:
        Name of the failure detector's output action (e.g. ``"fd-omega"``);
        actions with this name are classified as ``fd-output`` events.
    record_steps:
        Also record a ``step`` event each time the scheduler begins
        resolving a step.  Off by default (it doubles the event volume).

    Examples
    --------
    >>> from repro.ioa.scheduler import Scheduler
    >>> from repro.detectors.omega import OmegaAutomaton
    >>> recorder = TraceRecorder(fd_output_name="fd-omega")
    >>> with recorder.span("demo"):
    ...     _ = Scheduler(instrument=recorder).run(
    ...         OmegaAutomaton(locations=(0, 1)), max_steps=4)
    >>> [e.kind for e in recorder.events][:2]
    ['span-start', 'run-start']
    >>> recorder.counts()["fd-output"]
    4
    """

    def __init__(
        self,
        fd_output_name: Optional[str] = None,
        record_steps: bool = False,
    ):
        self.fd_output_name = fd_output_name
        self.record_steps = record_steps
        self.events: List[TraceEvent] = []
        self.spans: List[SpanRecord] = []
        self._span_stack: List[str] = []
        self._t0 = time.perf_counter()

    # -- Internals ---------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _append(
        self,
        kind: str,
        step: Optional[int],
        location: Optional[int],
        name: Optional[str],
        data: Dict[str, Any],
    ) -> None:
        self.events.append(
            TraceEvent(
                kind=kind,
                step=step,
                location=location,
                name=name,
                span=self._span_stack[-1] if self._span_stack else None,
                t=self._now(),
                data=data,
            )
        )

    def classify(self, action: Action, injected: bool) -> str:
        """The event kind of a fired action."""
        name = action.name
        if name == CRASH:
            return "crash"
        if name == SEND:
            return "send"
        if name == RECEIVE:
            return "receive"
        if name == DECIDE:
            return "decision"
        if self.fd_output_name is not None and name == self.fd_output_name:
            return "fd-output"
        return "injection" if injected else "action"

    # -- Observer protocol --------------------------------------------------

    def on_run_start(self, automaton, max_steps: int) -> None:
        self._append(
            "run-start",
            None,
            None,
            getattr(automaton, "name", None),
            {"max_steps": max_steps},
        )

    def on_step_scheduled(self, step: int) -> None:
        if self.record_steps:
            self._append("step", step, None, None, {})

    def on_action(self, step: int, action: Action, injected: bool) -> None:
        kind = self.classify(action, injected)
        data: Dict[str, Any] = {}
        if injected and kind != "injection":
            data["injected"] = True
        # Message events carry the other endpoint so reports can build the
        # per-location message matrix without re-parsing payloads.
        if kind == "send" and len(action.payload) == 2:
            data["dst"] = action.payload[1]
        elif kind == "receive" and len(action.payload) == 2:
            data["src"] = action.payload[1]
        self._append(kind, step, action.location, action.name, data)

    def on_run_end(self, steps: int, reason: str) -> None:
        self._append(
            "run-end", None, None, None, {"steps": steps, "reason": reason}
        )

    # -- Direct recording ---------------------------------------------------

    def record(
        self,
        kind: str,
        step: Optional[int] = None,
        location: Optional[int] = None,
        name: Optional[str] = None,
        **data: Any,
    ) -> None:
        """Record an arbitrary event (e.g. a checker verdict)."""
        self._append(kind, step, location, name, data)

    def span(self, name: str) -> _SpanHandle:
        """A context manager timing a named span.

        Events recorded while the span is open carry its name; the closed
        span is appended to :attr:`spans` and a ``span-end`` event with
        the duration is recorded.
        """
        return _SpanHandle(self, name)

    # -- Queries ------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Event-kind -> number of recorded events of that kind."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def events_of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def slowest_spans(self, top: int = 10) -> List[SpanRecord]:
        return sorted(self.spans, key=lambda s: -s.dur_s)[:top]

    # -- Export -------------------------------------------------------------

    def event_dicts(self) -> Iterator[Dict[str, Any]]:
        for event in self.events:
            yield event.to_dict()

    def canonical_dicts(self) -> Iterator[Dict[str, Any]]:
        """Event dicts with the wall-clock fields removed.

        For a deterministic run this sequence is itself deterministic —
        byte-identical however and wherever the run executed — which is
        what the :mod:`repro.runner` engine stores and what the
        determinism tests compare.  Drops ``t`` from every event and
        ``dur_s`` from ``span-end`` data.
        """
        for event in self.events:
            d = event.to_dict()
            d.pop("t", None)
            if event.kind == "span-end":
                data = dict(d.get("data", {}))
                data.pop("dur_s", None)
                if data:
                    d["data"] = data
                else:
                    d.pop("data", None)
            yield d

    def canonical_jsonl_lines(self) -> List[str]:
        """The canonical trace as JSONL lines (sorted keys, no timings)."""
        return [
            json.dumps(d, sort_keys=True, default=str)
            for d in self.canonical_dicts()
        ]

    def to_jsonl(self, target: Union[str, IO[str]]) -> None:
        """Write one JSON object per line to a path or open file."""
        if hasattr(target, "write"):
            for d in self.event_dicts():
                target.write(json.dumps(d, default=str) + "\n")
        else:
            with open(target, "w", encoding="utf-8") as fp:
                self.to_jsonl(fp)


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace exported by :meth:`TraceRecorder.to_jsonl`."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
