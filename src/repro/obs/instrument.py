"""The one instrumentation convention shared by every instrumentable class.

Before this module each component had its own spelling —
``Scheduler(observer=...)``, ``TaggedTreeGraph(metrics=...)``,
``run_consensus_experiment(observer=..., metrics=...)`` — and wiring a
trace recorder *and* a metrics registry through one experiment meant
knowing all of them.  Now every instrumentable surface (``Scheduler``,
``Composition``, ``ChannelAutomaton``, ``TaggedTreeGraph``, the
``repro.runner`` engine, and the experiment helpers built on them)
accepts a single ``instrument=`` argument and exposes
``attach_metrics()``:

* ``instrument=`` takes *anything that describes instrumentation*: an
  :class:`Instrumentation` bundle, a bare
  :class:`~repro.obs.trace.Observer`, a bare
  :class:`~repro.obs.metrics.MetricsRegistry`, a bare
  :class:`~repro.obs.prof.StepProfiler`, a tuple mixing them, or
  ``None`` (the default — fully uninstrumented, zero cost);
* ``attach_metrics(registry)`` attaches just the metrics half after
  construction, as before.

The pre-1.2 per-class kwarg spellings (``Scheduler(observer=...)``,
``with_observer()``/``with_metrics()``, ``metrics=`` on the tree tools)
went through a deprecation cycle and were removed in 1.5.0;
``instrument=`` is the only spelling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.prof import StepProfiler
from repro.obs.trace import Observer


@dataclass
class Instrumentation:
    """An observer, a metrics registry and/or a step profiler, bundled.

    Any third may be ``None``; a falsy bundle means "uninstrumented".

    Examples
    --------
    >>> from repro.obs.trace import TraceRecorder
    >>> inst = Instrumentation(observer=TraceRecorder())
    >>> bool(inst), inst.metrics is None, inst.profiler is None
    (True, True, True)
    """

    observer: Optional[Observer] = None
    metrics: Optional[MetricsRegistry] = None
    profiler: Optional[StepProfiler] = None

    def __bool__(self) -> bool:
        return (
            self.observer is not None
            or self.metrics is not None
            or self.profiler is not None
        )

    def merged_with(self, other: "Instrumentation") -> "Instrumentation":
        """This bundle, with ``other`` filling any empty third."""
        return Instrumentation(
            observer=self.observer if self.observer is not None else other.observer,
            metrics=self.metrics if self.metrics is not None else other.metrics,
            profiler=(
                self.profiler if self.profiler is not None else other.profiler
            ),
        )


def coerce_instrument(value: Any) -> Instrumentation:
    """Normalize any accepted ``instrument=`` value into a bundle.

    Accepts ``None``, an :class:`Instrumentation`, an
    :class:`~repro.obs.trace.Observer`, a
    :class:`~repro.obs.metrics.MetricsRegistry`, a
    :class:`~repro.obs.prof.StepProfiler`, or a tuple/list mixing them
    (later entries fill holes left by earlier ones).
    """
    if value is None:
        return Instrumentation()
    if isinstance(value, Instrumentation):
        return value
    if isinstance(value, MetricsRegistry):
        return Instrumentation(metrics=value)
    if isinstance(value, Observer):
        return Instrumentation(observer=value)
    if isinstance(value, StepProfiler):
        return Instrumentation(profiler=value)
    if isinstance(value, (tuple, list)):
        bundle = Instrumentation()
        for item in value:
            bundle = bundle.merged_with(coerce_instrument(item))
        return bundle
    raise TypeError(
        "instrument= accepts None, Instrumentation, an Observer, a "
        "MetricsRegistry, a StepProfiler, or a tuple of those; got "
        f"{type(value).__name__}"
    )
