"""The content-addressed run ledger: what ran, from what, producing what.

The ROADMAP's result-cache item needs a stable answer to "have we already
executed this exact experiment?".  This module supplies the key and the
book: every recorded run is a JSON object *keyed by the SHA-256 of its
canonical serialized identity* — for an
:class:`~repro.runner.spec.ExperimentSpec`, the spec fingerprint
(:func:`spec_fingerprint`); for a benchmark, its ``(bench_id, quick,
title)`` identity — and appended to an on-disk JSONL ledger
(:class:`RunLedger`).  Append-only is the point: re-running the same spec
appends a second entry under the same key, so drift between entries that
share a key is *evidence* (an engine change, a flaky environment), not a
merge conflict.

Each entry carries:

``key``
    The content address (``sha256:...`` of the canonical identity).
``kind`` / ``spec`` or ``bench``
    What ran, as canonical JSON-ready data (the preimage of ``key``).
``repro_version`` / ``seed`` / ``fault_plan``
    Provenance: library version, the run seed, and the *bound* fault-plan
    summary when one was attached (binding is part of reproducibility).
``profile``
    The ``repro.profile/1`` summary when the run was profiled.
``artifacts``
    Named output digests — whole-file SHA-256 plus, for benchmark
    artifacts, the :func:`series_digest` (the digest of the
    *deterministic* series content only, excluding timings/environment/
    stamps).  Two runs agree iff their series digests agree; the file
    digests will differ whenever wall time does.
``created_unix``
    Stamped via an injectable ``now_fn`` (REPRO001 allowlist, mirroring
    :func:`repro.obs.schema.make_bench_artifact`).

Validate a ledger file with ``python -m repro.obs.ledger LEDGER.jsonl``;
add ``--list`` for a key/kind/seed table.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import __version__
from repro.obs.schema import jsonify_cell

#: The ledger entry schema identifier.
LEDGER_SCHEMA = "repro.ledger/1"

#: Keys every ledger entry must carry, with their required types.
_REQUIRED: Dict[str, type] = {
    "schema": str,
    "key": str,
    "kind": str,
    "repro_version": str,
    "created_unix": (int, float),  # type: ignore[dict-item]
}

_KINDS = ("spec-run", "bench")


# ---------------------------------------------------------------------------
# Canonicalization and digests
# ---------------------------------------------------------------------------


def canonical_json(obj: Any) -> str:
    """The canonical serialization digests are computed over.

    Sorted keys, no whitespace, no NaN — byte-identical for equal values
    regardless of construction order, which is what makes the SHA-256 a
    *content* address.
    """
    return json.dumps(
        obj,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def digest(obj: Any) -> str:
    """``sha256:<hex>`` of the canonical JSON of ``obj``."""
    text = canonical_json(obj)
    return "sha256:" + hashlib.sha256(text.encode("utf-8")).hexdigest()


def file_digest(path: str) -> Dict[str, Any]:
    """Whole-file SHA-256 and byte size of ``path``."""
    hasher = hashlib.sha256()
    size = 0
    with open(path, "rb") as fp:
        for chunk in iter(lambda: fp.read(1 << 16), b""):
            hasher.update(chunk)
            size += len(chunk)
    return {"sha256": "sha256:" + hasher.hexdigest(), "bytes": size}


def series_digest(doc: Dict[str, Any]) -> str:
    """The digest of a bench artifact's *deterministic* content.

    Covers ``(bench_id, quick, series)`` only — the parts the engine's
    determinism contract pins — and deliberately excludes timings,
    environment and the ``created_unix`` stamp.  Equal series digests
    mean byte-identical measured rows; this is the equality the BENCH
    drift comparator (:mod:`repro.obs.compare`) and the future sweep
    cache key off.
    """
    return digest(
        {
            "bench_id": doc.get("bench_id"),
            "quick": doc.get("quick"),
            "series": doc.get("series"),
        }
    )


def spec_fingerprint(spec: Any) -> Dict[str, Any]:
    """The canonical JSON-ready identity of an ExperimentSpec.

    Extends :meth:`~repro.runner.spec.ExperimentSpec.meta` (label,
    problem, detector, locations, crashes, f, seed, policy, max_steps,
    bound fault plan) with the remaining behavior-determining fields —
    detector/algorithm kwargs, effective proposals, ``min_live_outputs``
    and the algorithm's name — so two specs share a fingerprint iff they
    describe the same run.  Instrumentation flags are excluded on
    purpose: tracing and profiling do not change executions, so they
    must not change the content address.
    """
    fp = dict(spec.meta())
    algorithm = spec.algorithm
    if algorithm is not None:
        fp["algorithm"] = str(
            getattr(algorithm, "name", None)
            or getattr(algorithm, "__name__", None)
            or type(algorithm).__name__
        )
    fp["algorithm_kwargs"] = jsonify_cell(spec.algorithm_kwargs)
    fp["detector_kwargs"] = jsonify_cell(spec.detector_kwargs)
    fp["proposals"] = jsonify_cell(
        {str(k): v for k, v in spec.effective_proposals().items()}
    )
    fp["min_live_outputs"] = spec.min_live_outputs
    return fp


def spec_digest(spec: Any) -> str:
    """The content address of one spec: ``digest(spec_fingerprint(spec))``."""
    return digest(spec_fingerprint(spec))


def bench_identity(doc: Dict[str, Any]) -> Dict[str, Any]:
    """The keyed identity of a bench artifact: what was measured, not
    what it measured."""
    return {
        "bench_id": doc.get("bench_id"),
        "quick": doc.get("quick"),
        "title": doc.get("title"),
    }


# ---------------------------------------------------------------------------
# Entries
# ---------------------------------------------------------------------------


def make_ledger_entry(
    kind: str,
    identity: Dict[str, Any],
    seed: Optional[int] = None,
    fault_plan: Optional[Dict[str, Any]] = None,
    profile: Optional[Dict[str, Any]] = None,
    artifacts: Optional[Dict[str, Dict[str, Any]]] = None,
    extra: Optional[Dict[str, Any]] = None,
    now_fn: Callable[[], float] = time.time,
) -> Dict[str, Any]:
    """Build one schema-conforming ledger entry.

    ``identity`` is the canonical preimage of the entry's ``key`` (a
    spec fingerprint or a bench identity).  ``now_fn`` supplies the
    ``created_unix`` stamp — a wall-clock read *about* the recording
    moment, injectable for frozen-clock tests and on the REPRO001
    allowlist.
    """
    if kind not in _KINDS:
        raise ValueError(f"unknown ledger kind {kind!r}; supported: {_KINDS}")
    entry: Dict[str, Any] = {
        "schema": LEDGER_SCHEMA,
        "key": digest(identity),
        "kind": kind,
        "repro_version": __version__,
        "created_unix": int(now_fn()),
        ("spec" if kind == "spec-run" else "bench"): identity,
    }
    if seed is not None:
        entry["seed"] = seed
    if fault_plan is not None:
        entry["fault_plan"] = fault_plan
    if profile is not None:
        entry["profile"] = profile
    if artifacts:
        entry["artifacts"] = artifacts
    if extra:
        entry.update(extra)
    return entry


def validate_ledger_entry(doc: Any) -> List[str]:
    """All schema violations of one ledger entry (empty == valid)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"entry must be a JSON object, got {type(doc).__name__}"]
    for key, expected in _REQUIRED.items():
        if key not in doc:
            errors.append(f"missing required key {key!r}")
        elif not isinstance(doc[key], expected):
            errors.append(
                f"key {key!r} must be "
                f"{getattr(expected, '__name__', expected)}, "
                f"got {type(doc[key]).__name__}"
            )
    if errors:
        return errors
    if doc["schema"] != LEDGER_SCHEMA:
        errors.append(
            f"unknown schema {doc['schema']!r} (expected {LEDGER_SCHEMA!r})"
        )
    if doc["kind"] not in _KINDS:
        errors.append(f"unknown kind {doc['kind']!r}; supported: {_KINDS}")
    identity_key = "spec" if doc["kind"] == "spec-run" else "bench"
    identity = doc.get(identity_key)
    if not isinstance(identity, dict):
        errors.append(f"kind {doc['kind']!r} requires a {identity_key!r} object")
    elif doc["key"] != digest(identity):
        errors.append(
            f"key {doc['key']!r} does not match digest of {identity_key!r} "
            "(corrupted or hand-edited entry)"
        )
    artifacts = doc.get("artifacts")
    if artifacts is not None:
        if not isinstance(artifacts, dict):
            errors.append("artifacts must be an object")
        else:
            for name, info in artifacts.items():
                if not isinstance(info, dict) or "sha256" not in info:
                    errors.append(
                        f"artifacts[{name!r}] must carry a 'sha256' digest"
                    )
    return errors


# ---------------------------------------------------------------------------
# The on-disk ledger
# ---------------------------------------------------------------------------


class RunLedger:
    """An append-only JSONL ledger of content-addressed run records.

    Parameters
    ----------
    path:
        The ledger file; created (with parent directories) on first
        append.  One JSON entry per line.
    now_fn:
        The ``created_unix`` source for entries recorded through this
        ledger (injectable; REPRO001 allowlist).

    Examples
    --------
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "LEDGER.jsonl")
    >>> ledger = RunLedger(path, now_fn=lambda: 1754500000.0)
    >>> entry = ledger.record_bench({"bench_id": "e0", "quick": False,
    ...                              "title": "t", "series": {"rows": []}})
    >>> [e["kind"] for e in ledger.entries()]
    ['bench']
    >>> ledger.lookup(entry["key"])[0]["bench"]["bench_id"]
    'e0'
    """

    def __init__(
        self, path: str, now_fn: Callable[[], float] = time.time
    ):
        self.path = str(path)
        self.now_fn = now_fn

    # -- Writing ----------------------------------------------------------

    def append(self, entry: Dict[str, Any]) -> Dict[str, Any]:
        """Validate and append one entry; returns it."""
        errors = validate_ledger_entry(entry)
        if errors:
            raise ValueError(
                "refusing to append invalid ledger entry: " + "; ".join(errors)
            )
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fp:
            fp.write(canonical_json(entry) + "\n")
        return entry

    def record_spec_run(
        self,
        spec: Any,
        result: Any = None,
        profile: Optional[Dict[str, Any]] = None,
        artifacts: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        """Record one executed :class:`~repro.runner.spec.ExperimentSpec`.

        ``artifacts`` maps names to file paths; each is digested.  When
        ``result`` is given, its deterministic outcome fields (solved,
        steps, messages) ride along as ``outcome`` — wall time does not.
        ``profile`` defaults to ``result.profile`` when present.
        """
        plan = spec.resolve_fault_plan()
        extra: Dict[str, Any] = {}
        if result is not None:
            extra["outcome"] = {
                "solved": result.solved,
                "fd_ok": result.fd_ok,
                "steps": result.steps,
                "messages_sent": result.messages_sent,
            }
            if profile is None:
                profile = result.profile
        entry = make_ledger_entry(
            kind="spec-run",
            identity=spec_fingerprint(spec),
            seed=spec.seed,
            fault_plan=plan.summary() if plan is not None else None,
            profile=profile,
            artifacts={
                name: file_digest(path)
                for name, path in (artifacts or {}).items()
            },
            extra=extra,
            now_fn=self.now_fn,
        )
        return self.append(entry)

    def record_bench(
        self,
        doc: Dict[str, Any],
        path: Optional[str] = None,
        profile: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Record one benchmark artifact document.

        The entry's artifacts carry both the whole-file digest (when
        ``path`` is given) and the series digest of ``doc`` — the
        deterministic half future runs are compared against.
        """
        artifacts: Dict[str, Dict[str, Any]] = {
            "series": {"sha256": series_digest(doc)}
        }
        if path is not None:
            artifacts["file"] = file_digest(path)
        entry = make_ledger_entry(
            kind="bench",
            identity=bench_identity(doc),
            profile=profile,
            artifacts=artifacts,
            extra={"timings": doc.get("timings", {})},
            now_fn=self.now_fn,
        )
        return self.append(entry)

    # -- Reading ----------------------------------------------------------

    def entries(self) -> List[Dict[str, Any]]:
        """All parseable entries, in append order.

        A missing file reads as empty; a truncated final line (killed
        writer) is skipped rather than fatal — the ledger is a log.
        """
        out: List[Dict[str, Any]] = []
        try:
            with open(self.path, "r", encoding="utf-8") as fp:
                for line in fp:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        doc = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if isinstance(doc, dict):
                        out.append(doc)
        except OSError:
            return []
        return out

    def lookup(self, key: str) -> List[Dict[str, Any]]:
        """Every entry recorded under ``key``, oldest first."""
        return [e for e in self.entries() if e.get("key") == key]

    def has(self, key: str) -> bool:
        return bool(self.lookup(key))

    def validate(self) -> List[str]:
        """Schema violations across the whole file (line-prefixed)."""
        errors: List[str] = []
        try:
            with open(self.path, "r", encoding="utf-8") as fp:
                lines = fp.readlines()
        except OSError as exc:
            return [f"{self.path}: unreadable ledger: {exc}"]
        for k, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {k}: not JSON: {exc}")
                continue
            for error in validate_ledger_entry(doc):
                errors.append(f"line {k}: {error}")
        return errors


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: ``python -m repro.obs.ledger LEDGER.jsonl [--list]``.

    Validates every entry (exit 1 on violations); ``--list`` also prints
    a key/kind/seed table of the valid entries.
    """
    args = list(sys.argv[1:] if argv is None else argv)
    list_entries = "--list" in args
    paths = [a for a in args if a != "--list"]
    if len(paths) != 1:
        print(
            "usage: python -m repro.obs.ledger LEDGER.jsonl [--list]",
            file=sys.stderr,
        )
        return 2
    ledger = RunLedger(paths[0])
    errors = ledger.validate()
    for error in errors:
        print(f"{paths[0]}: {error}", file=sys.stderr)
    if list_entries:
        for entry in ledger.entries():
            ident = entry.get("spec") or entry.get("bench") or {}
            label = ident.get("label") or ident.get("bench_id") or "?"
            print(
                f"{entry.get('key', '?')[:19]}  {entry.get('kind', '?'):8s}  "
                f"seed={entry.get('seed', '-')}  {label}"
            )
    if not errors:
        print(f"{paths[0]}: ok ({len(ledger.entries())} entries)")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
