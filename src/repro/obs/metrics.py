"""A zero-dependency metrics registry: counters, gauges, histograms.

Instrumented components (:class:`~repro.ioa.composition.Composition`,
:class:`~repro.system.channel.ChannelAutomaton`,
:class:`~repro.tree.tagged_tree.TaggedTreeGraph`, ...) hold an optional
registry reference and pay one ``is not None`` check per hot-path call
when metrics are off.

Metric name convention: dotted paths, ``"<component>.<quantity>"``
(``"scheduler.step_wall_s"``, ``"channel.depth.chan[0->1]"``,
``"tree.vertices"``).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.obs.trace import Observer


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can go up and down (e.g. a queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A stream of observations with summary statistics.

    Keeps every observation (runs in this harness are bounded), so exact
    percentiles are available; :meth:`to_dict` exports the summary, not
    the samples.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.sum / len(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0 <= q <= 100), nearest-rank."""
        if not self.values:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} out of range [0, 100]")
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1, round(q / 100 * len(ordered)) - 1))
        return ordered[rank]

    def to_dict(self) -> Dict[str, Any]:
        """The summary snapshot, with keys emitted in sorted order.

        Snapshots flow into serialized reports and artifacts, so the
        key order is part of the byte-level determinism contract
        (REPRO003): sorted by construction, never by the caller's
        goodwill.
        """
        if not self.values:
            return {"count": 0, "type": "histogram"}
        summary = {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": min(self.values),
            "max": max(self.values),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }
        return {key: summary[key] for key in sorted(summary)}


class _TimerHandle:
    """Context manager observing its elapsed wall time into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_TimerHandle":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class MetricsRegistry:
    """Create-on-first-use registry of named metrics.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.counter("tree.vertices").inc(7)
    >>> with registry.timer("tree.build_s"):
    ...     pass
    >>> registry.counter("tree.vertices").value
    7
    >>> registry.histogram("tree.build_s").count
    1
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    def timer(self, name: str) -> _TimerHandle:
        """Time a ``with`` block into ``histogram(name)`` (seconds)."""
        return _TimerHandle(self.histogram(name))

    def names(self) -> List[str]:
        return sorted(
            list(self._counters)
            + list(self._gauges)
            + list(self._histograms)
        )

    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """A JSON-ready snapshot of every metric.

        Built in sorted name order *by construction* — the iteration
        itself is over the sorted union, not an unordered accumulation
        sorted after the fact — so any serialization of the snapshot is
        byte-deterministic regardless of metric creation order
        (REPRO003).
        """
        tables = {
            name: table
            for table in (self._counters, self._gauges, self._histograms)
            for name in table
        }
        return {
            name: tables[name][name].to_dict() for name in sorted(tables)
        }


class MetricsObserver(Observer):
    """Derive scheduler metrics from the engine's observer notifications.

    Records, per run:

    * ``scheduler.steps`` — actions fired (counter);
    * ``scheduler.injections`` — injected actions (counter);
    * ``scheduler.step_wall_s`` — wall time between consecutive actions
      (histogram; the first action is measured from run start);
    * ``scheduler.turns.<task>`` — turns taken per task (counters), when
      the automaton can attribute actions to tasks;
    * ``scheduler.runs`` / ``scheduler.run_end.<reason>`` — run census.

    Task attribution calls ``automaton.task_of`` (a components scan on
    compositions), so it is opt-out via ``per_task=False`` for hot runs.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None, per_task: bool = True):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.per_task = per_task
        self._automaton = None
        self._last_t: Optional[float] = None

    def on_run_start(self, automaton, max_steps: int) -> None:
        self._automaton = automaton
        self._last_t = time.perf_counter()
        self.registry.counter("scheduler.runs").inc()

    def on_action(self, step: int, action, injected: bool) -> None:
        now = time.perf_counter()
        if self._last_t is not None:
            self.registry.histogram("scheduler.step_wall_s").observe(
                now - self._last_t
            )
        self._last_t = now
        self.registry.counter("scheduler.steps").inc()
        if injected:
            self.registry.counter("scheduler.injections").inc()
        elif self.per_task and self._automaton is not None:
            task = self._automaton.task_of(action)
            if task is not None:
                self.registry.counter(f"scheduler.turns.{task}").inc()

    def on_run_end(self, steps: int, reason: str) -> None:
        self.registry.counter(f"scheduler.run_end.{reason}").inc()
        self._last_t = None
