"""Step-level profiling: where the simulation engine's time actually goes.

PR 3 de-quadratized the scheduler hot path (dispatch memo, per-component
enabled cache, tree vertex/task-edge memos) but left the repository blind
below whole-run wall time: a kernel's ``kernel_wall_s`` says nothing about
whether the budget went to enabled-set snapshots, policy choices, applies
or observer dispatch, and nothing about whether the PR 3 caches are
actually hitting.  This module is the instrument the ROADMAP's next items
(compiled simulation core, content-addressed sweep cache) calibrate
against.  Two halves:

:class:`StepProfiler`
    Hierarchical per-phase accounting *inside* the scheduler step loop.
    The phases mirror the Section 2 automaton step semantics — resolve
    what is enabled, choose, apply, notify — plus the chaos layer's
    internal channel clock:

    ===============  =====================================================
    ``snapshot``     the per-step enabled-by-task snapshot (Section 2.2
                     enabledness over the composed signature)
    ``policy``       the scheduler policy's choice among enabled tasks
                     (the fairness-resolving nondeterminism, Section 2.4)
    ``apply``        the transition function on the chosen action
    ``chan-tick``    applies of the chaos channels' internal ``chan-tick``
                     action (delay aging), split out of ``apply``
    ``observe``      observer notifications (tracing, metrics, oracles)
    ``injection``    resolving adversary-injected free actions
    ===============  =====================================================

    Every phase carries **two** books: a deterministic call counter
    (byte-stable across machines for a fixed spec) and a wall-clock
    total read through an injectable ``clock`` (default
    ``time.perf_counter``).  Wall time never flows into trace or series
    data — it lives only in the profile summary.  Attaching a profiler
    costs a run exactly one ``is not None`` test when off: the scheduler
    keeps its original unprofiled loop and only a profiled run takes the
    instrumented twin (``Scheduler._run_profiled``).

Cache telemetry (:func:`cache_counter`)
    Process-global named hit/miss/evict counters the hot-path memos
    increment directly (plain integer adds — no registry lookups, no
    branches).  The composition increments ``composition.dispatch`` /
    ``composition.enabled`` / ``composition.task``; the tagged tree
    increments ``tree.task-edges`` / ``tree.vertices``.  Counts are pure
    functions of the executed steps, so they are themselves deterministic
    observables.  :func:`cache_stats_snapshot` /
    :func:`cache_stats_delta` turn them into profile/ledger fields, and
    the scheduler exports per-run deltas into an attached
    :class:`~repro.obs.metrics.MetricsRegistry` as ``cache.<name>.<kind>``
    counters.

The profile summary (:meth:`StepProfiler.summary`) is a JSON-ready
document (schema ``repro.profile/1``) stamped via an injectable
``now_fn`` — together with the benchmark-artifact stamp in
:mod:`repro.obs.schema` and the ledger stamp in :mod:`repro.obs.ledger`,
one of the three REPRO001 wall-clock allowlist entries (docs/LINT.md).
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional

#: The profile summary schema identifier.
PROFILE_SCHEMA = "repro.profile/1"

#: The scheduler step-loop phases, in step order.  The last two are
#: booked only by the compiled path (:mod:`repro.compiled.loop`):
#: ``compile`` is table construction at run setup, ``intern`` is a
#: transition-table miss (an interpreted apply + interning on a
#: configuration's first sighting); a table hit books under ``apply`` /
#: ``chan-tick`` like the interpreted loop.
PHASES = (
    "snapshot",
    "policy",
    "apply",
    "chan-tick",
    "observe",
    "injection",
    "compile",
    "intern",
)


# ---------------------------------------------------------------------------
# Cache telemetry: process-global hit/miss/evict counters
# ---------------------------------------------------------------------------


class CacheCounter:
    """Hit/miss/evict tallies for one named memo.

    Hot paths increment the attributes directly (``counter.hits += 1``);
    the class exists to make those increments one attribute store, not a
    dictionary transaction.  ``evictions`` counts *entries dropped*, not
    drop events, so a cap-triggered clear of 65k entries reads as 65k.
    """

    __slots__ = ("name", "hits", "misses", "evictions")

    def __init__(self, name: str):
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per probe in [0, 1]; 0.0 when never probed."""
        probes = self.probes
        return self.hits / probes if probes else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 6),
            "hits": self.hits,
            "misses": self.misses,
        }

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __repr__(self) -> str:
        return (
            f"CacheCounter({self.name!r}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )


#: name -> the process-wide counter instance (create-on-first-use).
_CACHE_COUNTERS: Dict[str, CacheCounter] = {}


def cache_counter(name: str) -> CacheCounter:
    """The process-global counter for memo ``name``.

    Components fetch their counters once at construction and keep the
    reference, so :func:`reset_cache_stats` zeroes counters *in place*
    rather than replacing them.
    """
    counter = _CACHE_COUNTERS.get(name)
    if counter is None:
        counter = _CACHE_COUNTERS[name] = CacheCounter(name)
    return counter


def cache_stats_snapshot() -> Dict[str, Dict[str, int]]:
    """A sorted, JSON-ready snapshot of every cache counter."""
    return {
        name: _CACHE_COUNTERS[name].as_dict()
        for name in sorted(_CACHE_COUNTERS)
    }


def cache_stats_delta(
    before: Dict[str, Dict[str, Any]],
    after: Optional[Dict[str, Dict[str, Any]]] = None,
) -> Dict[str, Dict[str, Any]]:
    """``after - before`` per counter, with recomputed hit rates.

    ``after`` defaults to a fresh :func:`cache_stats_snapshot`.  Counters
    absent from ``before`` count from zero; counters with no probes in
    the window are dropped, so the delta names exactly the memos the
    window exercised.
    """
    if after is None:
        after = cache_stats_snapshot()
    delta: Dict[str, Dict[str, Any]] = {}
    for name in sorted(after):
        base = before.get(name, {})
        hits = after[name]["hits"] - base.get("hits", 0)
        misses = after[name]["misses"] - base.get("misses", 0)
        evictions = after[name]["evictions"] - base.get("evictions", 0)
        probes = hits + misses
        if probes == 0 and evictions == 0:
            continue
        delta[name] = {
            "evictions": evictions,
            "hit_rate": round(hits / probes, 6) if probes else 0.0,
            "hits": hits,
            "misses": misses,
        }
    return delta


def reset_cache_stats() -> None:
    """Zero every counter in place (existing references stay live)."""
    for counter in _CACHE_COUNTERS.values():
        counter.reset()


# ---------------------------------------------------------------------------
# The step profiler
# ---------------------------------------------------------------------------


class StepProfiler:
    """Per-phase accounting for scheduler runs (see the module docstring).

    Parameters
    ----------
    clock:
        The duration clock, read twice per phase.  Injectable so tests
        can replay a scripted clock; default ``time.perf_counter``
        (monotonic, not wall time, hence outside REPRO001's scope).
    now_fn:
        Supplies the summary's ``created_unix`` stamp — a genuine
        wall-clock read *about* the profiling moment, on the REPRO001
        allowlist and injectable for frozen-clock tests, mirroring
        :func:`repro.obs.schema.make_bench_artifact`.

    A profiler accumulates across runs until :meth:`reset`, so one
    instance can profile a whole sweep.  Attach it anywhere the unified
    ``instrument=`` convention reaches::

        profiler = StepProfiler()
        Scheduler(instrument=profiler).run(automaton, max_steps=100)
        profiler.summary()["phases"]["apply"]["calls"]

    Examples
    --------
    >>> ticks = iter(range(100))
    >>> prof = StepProfiler(clock=lambda: float(next(ticks)))
    >>> t0 = prof.t()
    >>> prof.add("apply", prof.t() - t0)
    >>> prof.phase_calls["apply"], prof.phase_wall_s["apply"]
    (1, 1.0)
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        now_fn: Callable[[], float] = time.time,
    ):
        self.clock = clock
        self.now_fn = now_fn
        self.phase_calls: Dict[str, int] = {}
        self.phase_wall_s: Dict[str, float] = {}
        self.runs = 0
        self.steps = 0
        self.injections = 0
        self.states_touched = 0
        self._cache_base = cache_stats_snapshot()

    # -- Recording (called from the scheduler's profiled loop) -----------

    def t(self) -> float:
        """A reading of the injectable duration clock."""
        return self.clock()

    def add(self, phase: str, dur_s: float) -> None:
        """Account one timed call to ``phase``."""
        self.phase_calls[phase] = self.phase_calls.get(phase, 0) + 1
        self.phase_wall_s[phase] = self.phase_wall_s.get(phase, 0.0) + dur_s

    def on_run_start(self) -> None:
        self.runs += 1

    def on_run_end(self, steps: int, injections: int) -> None:
        self.steps += steps
        self.injections += injections
        # Every fired step touches one fresh state (plus the initial one
        # per run, counted here so the tally is exact, not off by #runs).
        self.states_touched += steps + 1

    def reset(self) -> None:
        """Forget everything recorded and re-base the cache window."""
        self.phase_calls = {}
        self.phase_wall_s = {}
        self.runs = 0
        self.steps = 0
        self.injections = 0
        self.states_touched = 0
        self._cache_base = cache_stats_snapshot()

    # -- Export -----------------------------------------------------------

    @property
    def wall_s(self) -> float:
        """Total wall time across all phases."""
        return sum(self.phase_wall_s.values())

    def cache_stats(self) -> Dict[str, Dict[str, Any]]:
        """Cache activity since construction (or the last :meth:`reset`)."""
        return cache_stats_delta(self._cache_base)

    def summary(self, include_cache: bool = True) -> Dict[str, Any]:
        """The JSON-ready profile document (schema ``repro.profile/1``).

        Deterministic counts (``phases.*.calls``, ``counters``, the
        ``cache`` block) are separated from wall-clock fields
        (``phases.*.wall_s``, ``wall_s``) so consumers can diff the
        former byte-for-byte and band-check the latter.
        """
        doc: Dict[str, Any] = {
            "schema": PROFILE_SCHEMA,
            "created_unix": int(self.now_fn()),
            "counters": {
                "injections": self.injections,
                "runs": self.runs,
                "states_touched": self.states_touched,
                "steps": self.steps,
            },
            "phases": {
                name: {
                    "calls": self.phase_calls[name],
                    "wall_s": round(self.phase_wall_s[name], 9),
                }
                for name in sorted(self.phase_calls)
            },
            "wall_s": round(self.wall_s, 9),
        }
        if include_cache:
            doc["cache"] = self.cache_stats()
        return doc

    def to_json(self, path: str, include_cache: bool = True) -> str:
        """Write :meth:`summary` to ``path``; returns the JSON text."""
        text = json.dumps(
            self.summary(include_cache=include_cache), indent=2, sort_keys=True
        )
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(text + "\n")
        return text


# ---------------------------------------------------------------------------
# Profile document validation (CI checks the uploaded artifact)
# ---------------------------------------------------------------------------

_REQUIRED: Dict[str, type] = {
    "schema": str,
    "created_unix": (int, float),  # type: ignore[dict-item]
    "counters": dict,
    "phases": dict,
    "wall_s": (int, float),  # type: ignore[dict-item]
}


def validate_profile(doc: Any) -> List[str]:
    """All schema violations of a profile document (empty == valid)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"profile must be a JSON object, got {type(doc).__name__}"]
    for key, expected in _REQUIRED.items():
        if key not in doc:
            errors.append(f"missing required key {key!r}")
        elif not isinstance(doc[key], expected):
            errors.append(
                f"key {key!r} must be "
                f"{getattr(expected, '__name__', expected)}, "
                f"got {type(doc[key]).__name__}"
            )
    if errors:
        return errors
    if doc["schema"] != PROFILE_SCHEMA:
        errors.append(
            f"unknown schema {doc['schema']!r} (expected {PROFILE_SCHEMA!r})"
        )
    for name, phase in doc["phases"].items():
        if not isinstance(phase, dict) or "calls" not in phase:
            errors.append(f"phases[{name!r}] must carry a 'calls' count")
    for name, value in doc["counters"].items():
        if not isinstance(value, int):
            errors.append(f"counters[{name!r}] must be an integer")
    cache = doc.get("cache")
    if cache is not None:
        if not isinstance(cache, dict):
            errors.append("cache must be an object")
        else:
            for name, stats in cache.items():
                if not isinstance(stats, dict) or not {
                    "hits",
                    "misses",
                }.issubset(stats):
                    errors.append(
                        f"cache[{name!r}] must carry hits/misses counts"
                    )
    return errors
