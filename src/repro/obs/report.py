"""Per-run reports: serializable summaries of executions and traces.

:class:`RunReport` subsumes :class:`~repro.analysis.stats.RunStatistics`
(the event tallies) and extends it with the observability layer's view:
event-kind counts, the per-location message matrix, span timings and a
metrics snapshot.  Build one from any combination of an
:class:`~repro.ioa.executions.Execution`, a
:class:`~repro.obs.trace.TraceRecorder` and a
:class:`~repro.obs.metrics.MetricsRegistry`.

Also the CLI over saved traces::

    python -m repro.obs.report run.jsonl [--top 10] [--format text|json]

which pretty-prints (or, with ``--format json``, emits as JSON) the
event-kind counts, the top-N slowest spans and the per-location message
matrix of a JSONL trace exported by :meth:`TraceRecorder.to_jsonl`.  The
CLI is tolerant of imperfect inputs: a missing file is a clean error
(exit 1, no traceback), an empty trace is an empty report, and truncated
or non-JSON lines (a killed writer) are skipped and *counted* in the
report's ``skipped_lines`` meta field rather than aborting the summary.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import RunStatistics, collect_run_statistics
from repro.ioa.executions import Execution
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder, load_jsonl


@dataclass
class RunReport:
    """Everything measurable about one run, JSON-ready.

    ``message_matrix`` maps ``"<src>-><dst>"`` to the number of sends on
    that channel; ``per_location`` maps stringified locations to their
    event counts.
    """

    meta: Dict[str, Any] = field(default_factory=dict)
    stats: Optional[RunStatistics] = None
    event_counts: Dict[str, int] = field(default_factory=dict)
    message_matrix: Dict[str, int] = field(default_factory=dict)
    per_location: Dict[str, int] = field(default_factory=dict)
    spans: List[Dict[str, float]] = field(default_factory=list)
    metrics: Optional[Dict[str, Any]] = None
    wall_s: Optional[float] = None

    # -- Export ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"schema": "repro.report/1", "meta": self.meta}
        if self.stats is not None:
            doc["stats"] = self.stats.to_dict()
        doc["event_counts"] = self.event_counts
        doc["message_matrix"] = self.message_matrix
        doc["per_location"] = self.per_location
        doc["spans"] = self.spans
        if self.metrics is not None:
            doc["metrics"] = self.metrics
        if self.wall_s is not None:
            doc["wall_s"] = self.wall_s
        return doc

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        text = json.dumps(self.to_dict(), indent=indent, default=str)
        if path is not None:
            with open(path, "w", encoding="utf-8") as fp:
                fp.write(text + "\n")
        return text

    def to_text(self, top: int = 10) -> str:
        """A human-readable summary (the CLI's output format)."""
        lines: List[str] = []
        title = self.meta.get("title", "run report")
        lines.append(f"== {title} ==")
        for key, value in self.meta.items():
            if key != "title":
                lines.append(f"  {key}: {value}")
        if self.wall_s is not None:
            lines.append(f"  wall time: {self.wall_s:.4f}s")
        if self.stats is not None:
            s = self.stats
            lines.append(
                f"  events: {s.total_events}  sends: {s.sends}  "
                f"receives: {s.receives}  crashes: {s.crashes}  "
                f"decisions: {s.decisions}"
            )
            if s.decision_latency is not None:
                lines.append(
                    f"  decision latency: first {s.first_decision_latency}, "
                    f"last {s.decision_latency} events"
                )
        if self.event_counts:
            lines.append("-- event kinds --")
            for kind, count in sorted(
                self.event_counts.items(), key=lambda kv: -kv[1]
            ):
                lines.append(f"  {kind:<12} {count}")
        if self.spans:
            lines.append(f"-- slowest spans (top {top}) --")
            for span in sorted(self.spans, key=lambda s: -s["dur_s"])[:top]:
                lines.append(f"  {span['name']:<24} {span['dur_s']:.6f}s")
        if self.message_matrix:
            lines.append("-- message matrix (src->dst: sends) --")
            for edge, count in sorted(self.message_matrix.items()):
                lines.append(f"  {edge:<12} {count}")
        if self.metrics:
            lines.append("-- metrics --")
            for name, snap in sorted(self.metrics.items()):
                summary = ", ".join(
                    f"{k}={v}" for k, v in snap.items() if k != "type"
                )
                lines.append(f"  {name}: {summary}")
        return "\n".join(lines)


def build_run_report(
    execution: Optional[Execution] = None,
    recorder: Optional[TraceRecorder] = None,
    metrics: Optional[MetricsRegistry] = None,
    fd_output_name: Optional[str] = None,
    meta: Optional[Dict[str, Any]] = None,
    wall_s: Optional[float] = None,
) -> RunReport:
    """Assemble a :class:`RunReport` from whatever was instrumented.

    The execution yields the tallies and message matrix; the recorder
    yields event-kind counts, per-location counts and span timings; the
    registry yields the metrics snapshot.  Any subset works.
    """
    report = RunReport(meta=dict(meta or {}), wall_s=wall_s)
    if execution is not None:
        if fd_output_name is None and recorder is not None:
            fd_output_name = recorder.fd_output_name
        report.stats = collect_run_statistics(execution, fd_output_name)
        matrix: Dict[str, int] = {}
        for action in execution.actions:
            if action.name == "send" and len(action.payload) == 2:
                edge = f"{action.location}->{action.payload[1]}"
                matrix[edge] = matrix.get(edge, 0) + 1
        report.message_matrix = matrix
    if recorder is not None:
        report.event_counts = recorder.counts()
        per_location: Dict[str, int] = {}
        for event in recorder.events:
            if event.location is not None:
                key = str(event.location)
                per_location[key] = per_location.get(key, 0) + 1
        report.per_location = per_location
        report.spans = [
            {"name": span.name, "dur_s": span.dur_s}
            for span in recorder.spans
        ]
        if not report.message_matrix:
            report.message_matrix = _matrix_from_events(
                e.to_dict() for e in recorder.events
            )
    if metrics is not None:
        report.metrics = metrics.to_dict()
    return report


# -- JSONL trace summaries (the CLI path) ----------------------------------


def _matrix_from_events(events) -> Dict[str, int]:
    matrix: Dict[str, int] = {}
    for event in events:
        if event.get("kind") == "send":
            src = event.get("location")
            dst = event.get("data", {}).get("dst")
            if src is not None and dst is not None:
                edge = f"{src}->{dst}"
                matrix[edge] = matrix.get(edge, 0) + 1
    return matrix


def _load_jsonl_tolerant(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Like :func:`~repro.obs.trace.load_jsonl`, but malformed lines
    (truncated tail of a killed writer, stray text) are skipped and
    tallied instead of raising."""
    events: List[Dict[str, Any]] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if isinstance(doc, dict):
                events.append(doc)
            else:
                skipped += 1
    return events, skipped


def report_from_jsonl(path: str, strict: bool = True) -> RunReport:
    """Rebuild a summary report from an exported JSONL trace.

    ``strict=True`` (the library default) propagates malformed lines as
    ``json.JSONDecodeError``; the CLI passes ``strict=False`` to skip
    and count them (``meta["skipped_lines"]``).
    """
    if strict:
        events = load_jsonl(path)
        skipped = 0
    else:
        events, skipped = _load_jsonl_tolerant(path)
    counts: Dict[str, int] = {}
    per_location: Dict[str, int] = {}
    spans: List[Dict[str, float]] = []
    for event in events:
        kind = event.get("kind", "?")
        counts[kind] = counts.get(kind, 0) + 1
        location = event.get("location")
        if location is not None:
            per_location[str(location)] = per_location.get(str(location), 0) + 1
        if kind == "span-end":
            spans.append(
                {
                    "name": event.get("name", "?"),
                    "dur_s": float(event.get("data", {}).get("dur_s", 0.0)),
                }
            )
    meta: Dict[str, Any] = {"title": path, "num_events": len(events)}
    if skipped:
        meta["skipped_lines"] = skipped
    return RunReport(
        meta=meta,
        event_counts=counts,
        per_location=per_location,
        spans=spans,
        message_matrix=_matrix_from_events(events),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: summarize a saved JSONL trace.

    Exit status: 0 on a readable trace (even an empty or partially
    truncated one — the report says so), 1 on an unreadable file, 2 on
    usage errors.
    """
    args = list(sys.argv[1:] if argv is None else argv)
    top = 10
    fmt = "text"
    if "--top" in args:
        k = args.index("--top")
        try:
            top = int(args[k + 1])
        except (IndexError, ValueError):
            print("--top needs an integer", file=sys.stderr)
            return 2
        del args[k : k + 2]
    if "--format" in args:
        k = args.index("--format")
        try:
            fmt = args[k + 1]
        except IndexError:
            print("--format needs a value", file=sys.stderr)
            return 2
        del args[k : k + 2]
    for arg in list(args):
        if arg.startswith("--format="):
            fmt = arg.split("=", 1)[1]
            args.remove(arg)
    if fmt not in ("text", "json"):
        print(f"unknown format {fmt!r} (text or json)", file=sys.stderr)
        return 2
    if len(args) != 1:
        print(
            "usage: python -m repro.obs.report <run.jsonl> [--top N] "
            "[--format text|json]",
            file=sys.stderr,
        )
        return 2
    try:
        report = report_from_jsonl(args[0], strict=False)
    except OSError as exc:
        print(f"cannot read {args[0]}: {exc}", file=sys.stderr)
        return 1
    if fmt == "json":
        print(report.to_json())
    else:
        print(report.to_text(top=top))
        if not report.event_counts:
            print("(empty trace: no events)", file=sys.stderr)
        skipped = report.meta.get("skipped_lines")
        if skipped:
            print(
                f"(skipped {skipped} malformed line(s))", file=sys.stderr
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
