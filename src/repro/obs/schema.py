"""The persisted benchmark artifact: schema, builder, validator.

Every benchmark script emits a ``BENCH_<ID>.json`` file in the repository
root; these files are tracked in git and form the performance trajectory
future optimisation PRs are judged against.  The schema is deliberately
flat and stable:

.. code-block:: json

    {
      "schema": "repro.bench/1",
      "bench_id": "e10",
      "title": "E10: consensus latency/messages ...",
      "quick": false,
      "created_unix": 1754450000,
      "environment": {"python": "3.11.7", "platform": "...",
                      "git_sha": "abc123" },
      "series": {"header": ["detector", "n"], "rows": [["Omega", 3]]},
      "timings": {"kernel_wall_s": 1.234},
      "metrics": {}
    }

``series.rows`` cells are JSON scalars; non-scalar harness values (crash
plans, tuples, actions) are stringified by :func:`jsonify_cell`.
Validate a file with ``python -m repro.obs.schema BENCH_E10.json``.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

#: The current artifact schema identifier.
BENCH_SCHEMA = "repro.bench/1"

#: Keys every artifact must carry, with their required types.
_REQUIRED: Dict[str, type] = {
    "schema": str,
    "bench_id": str,
    "title": str,
    "quick": bool,
    "created_unix": (int, float),  # type: ignore[dict-item]
    "environment": dict,
    "series": dict,
}


def jsonify_cell(value: Any) -> Any:
    """Coerce one series cell into a JSON-serializable scalar/list.

    Scalars pass through; tuples/lists/sets recurse; dicts become
    ``{str(k): ...}``; anything else (e.g. an Action) stringifies.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [jsonify_cell(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(jsonify_cell(v) for v in value)
    if isinstance(value, dict):
        return {str(k): jsonify_cell(v) for k, v in value.items()}
    return str(value)


def environment_info() -> Dict[str, str]:
    """Python, platform and git revision of the measuring machine."""
    info = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
    }
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
        if sha.returncode == 0:
            info["git_sha"] = sha.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return info


def make_bench_artifact(
    bench_id: str,
    title: str,
    rows: Sequence[Sequence[Any]],
    header: Optional[Sequence[Any]] = None,
    timings: Optional[Dict[str, float]] = None,
    metrics: Optional[Dict[str, Any]] = None,
    quick: bool = False,
    now_fn: Callable[[], float] = time.time,
) -> Dict[str, Any]:
    """Build a schema-conforming artifact document.

    ``now_fn`` supplies the ``created_unix`` stamp — the one legitimate
    wall-clock read in the library (artifacts are *about* a moment in
    time).  It is injectable so tests can freeze the clock; the default
    is the sole entry on the REPRO001 wall-clock allowlist
    (see ``docs/LINT.md``).
    """
    doc: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "bench_id": bench_id,
        "title": title,
        "quick": bool(quick),
        "created_unix": int(now_fn()),
        "environment": environment_info(),
        "series": {
            "header": [jsonify_cell(h) for h in header] if header else None,
            "rows": [
                [jsonify_cell(cell) for cell in row] for row in rows
            ],
        },
    }
    if timings:
        doc["timings"] = {k: float(v) for k, v in timings.items()}
    if metrics:
        doc["metrics"] = metrics
    return doc


def validate_bench_artifact(doc: Any) -> List[str]:
    """All schema violations of ``doc`` (empty list == valid)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"artifact must be a JSON object, got {type(doc).__name__}"]
    for key, expected in _REQUIRED.items():
        if key not in doc:
            errors.append(f"missing required key {key!r}")
        elif not isinstance(doc[key], expected):
            errors.append(
                f"key {key!r} must be {getattr(expected, '__name__', expected)}, "
                f"got {type(doc[key]).__name__}"
            )
    if errors:
        return errors
    if doc["schema"] != BENCH_SCHEMA:
        errors.append(
            f"unknown schema {doc['schema']!r} (expected {BENCH_SCHEMA!r})"
        )
    series = doc["series"]
    if "rows" not in series or not isinstance(series["rows"], list):
        errors.append("series.rows must be a list")
    else:
        for k, row in enumerate(series["rows"]):
            if not isinstance(row, list):
                errors.append(f"series.rows[{k}] must be a list")
    header = series.get("header")
    if header is not None and not isinstance(header, list):
        errors.append("series.header must be a list or null")
    if "timings" in doc:
        if not isinstance(doc["timings"], dict) or not all(
            isinstance(v, (int, float)) for v in doc["timings"].values()
        ):
            errors.append("timings must map names to numbers")
    return errors


def validate_bench_file(path: str) -> List[str]:
    """Validate one ``BENCH_*.json`` file; returns the error list."""
    try:
        with open(path, "r", encoding="utf-8") as fp:
            doc = json.load(fp)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable artifact: {exc}"]
    return validate_bench_artifact(doc)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: ``python -m repro.obs.schema BENCH_A.json [BENCH_B.json ...]``"""
    paths = list(sys.argv[1:] if argv is None else argv)
    if not paths:
        print("usage: python -m repro.obs.schema BENCH_*.json", file=sys.stderr)
        return 2
    failed = False
    for path in paths:
        errors = validate_bench_file(path)
        if errors:
            failed = True
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
