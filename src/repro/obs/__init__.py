"""Observability for the simulation harness: tracing, metrics, reports.

The paper's evaluation is a set of theorems checked over simulated
executions; this subpackage is the instrument panel for those
simulations.  It is deliberately zero-dependency and pay-for-what-you-use:
nothing here runs unless an observer or a metrics registry is attached.

``repro.obs.instrument``
    The unified ``instrument=`` / ``attach_metrics()`` convention: the
    :class:`Instrumentation` bundle every instrumentable class accepts.
``repro.obs.trace``
    Structured event tracing: an :class:`Observer` protocol the scheduler
    notifies, and a :class:`TraceRecorder` that turns the notifications
    into typed, timestamped events with span timers and JSONL export.
``repro.obs.metrics``
    A registry of counters, gauges and histograms, plus a
    :class:`MetricsObserver` that derives scheduler metrics (wall time
    per step, per-task turn counts) from the same notifications.
``repro.obs.report``
    Per-run reports: a serializable :class:`RunReport` subsuming
    :class:`~repro.analysis.stats.RunStatistics`, and the
    ``python -m repro.obs.report`` CLI over saved JSONL traces.
``repro.obs.schema``
    The stable schema of the persisted ``BENCH_*.json`` benchmark
    artifacts, with a validator (also a CLI: ``python -m
    repro.obs.schema``).
``repro.obs.prof``
    Step-level profiling: the :class:`StepProfiler` the scheduler's
    phase-accounted twin loop books into, plus the process-global cache
    hit/miss/evict counters the hot-path memos increment.
``repro.obs.ledger``
    The content-addressed run ledger: append-only JSONL records keyed
    by the SHA-256 of each run's canonical identity (also a CLI:
    ``python -m repro.obs.ledger``).
``repro.obs.compare``
    The BENCH drift comparator: exact series comparison with
    first-divergence reporting, tolerance-banded wall-time trends (also
    a CLI: ``python -m repro.obs.compare``).
"""

# Lazy re-exports (PEP 562): importing a name pulls in only its module.
# This keeps `import repro.obs` nearly free and lets the submodule CLIs
# (`python -m repro.obs.report` / `.schema`) run without the runpy
# double-import RuntimeWarning an eager `from .report import ...` causes.
_EXPORTS = {
    "Instrumentation": "repro.obs.instrument",
    "coerce_instrument": "repro.obs.instrument",
    "Counter": "repro.obs.metrics",
    "Gauge": "repro.obs.metrics",
    "Histogram": "repro.obs.metrics",
    "MetricsObserver": "repro.obs.metrics",
    "MetricsRegistry": "repro.obs.metrics",
    "RunReport": "repro.obs.report",
    "build_run_report": "repro.obs.report",
    "BENCH_SCHEMA": "repro.obs.schema",
    "make_bench_artifact": "repro.obs.schema",
    "validate_bench_artifact": "repro.obs.schema",
    "MultiObserver": "repro.obs.trace",
    "Observer": "repro.obs.trace",
    "SpanRecord": "repro.obs.trace",
    "TraceEvent": "repro.obs.trace",
    "TraceRecorder": "repro.obs.trace",
    "PROFILE_SCHEMA": "repro.obs.prof",
    "CacheCounter": "repro.obs.prof",
    "StepProfiler": "repro.obs.prof",
    "cache_counter": "repro.obs.prof",
    "cache_stats_delta": "repro.obs.prof",
    "cache_stats_snapshot": "repro.obs.prof",
    "reset_cache_stats": "repro.obs.prof",
    "validate_profile": "repro.obs.prof",
    "LEDGER_SCHEMA": "repro.obs.ledger",
    "RunLedger": "repro.obs.ledger",
    "make_ledger_entry": "repro.obs.ledger",
    "series_digest": "repro.obs.ledger",
    "spec_digest": "repro.obs.ledger",
    "spec_fingerprint": "repro.obs.ledger",
    "validate_ledger_entry": "repro.obs.ledger",
    "SeriesDrift": "repro.obs.compare",
    "compare_docs": "repro.obs.compare",
    "compare_dirs": "repro.obs.compare",
    "compare_files": "repro.obs.compare",
    "compare_series": "repro.obs.compare",
    "first_divergence": "repro.obs.compare",
}


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "Instrumentation",
    "coerce_instrument",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsObserver",
    "MetricsRegistry",
    "RunReport",
    "build_run_report",
    "BENCH_SCHEMA",
    "make_bench_artifact",
    "validate_bench_artifact",
    "MultiObserver",
    "Observer",
    "SpanRecord",
    "TraceEvent",
    "TraceRecorder",
    "PROFILE_SCHEMA",
    "CacheCounter",
    "StepProfiler",
    "cache_counter",
    "cache_stats_delta",
    "cache_stats_snapshot",
    "reset_cache_stats",
    "validate_profile",
    "LEDGER_SCHEMA",
    "RunLedger",
    "make_ledger_entry",
    "series_digest",
    "spec_digest",
    "spec_fingerprint",
    "validate_ledger_entry",
    "SeriesDrift",
    "compare_docs",
    "compare_dirs",
    "compare_files",
    "compare_series",
    "first_divergence",
]
