"""The BENCH drift comparator: did the deterministic series move?

The repository's performance story rests on a split the artifacts
(:mod:`repro.obs.schema`) already encode: a ``BENCH_<ID>.json`` file has
a *deterministic* half (``series`` — pinned byte-for-byte by the
engine's determinism contract) and a *measured* half (``timings``,
``environment``, ``created_unix`` — expected to move between machines
and runs).  This module compares two artifacts — or two directories of
them — holding the halves to their own standards:

* **series** — exact equality, cell by cell.  Any difference is drift
  and is reported with the series name and the *first divergence index*
  (the first differing row, and within it the first differing column),
  so a regression points at the exact measurement that moved rather than
  at a 2000-line JSON diff.
* **timings** — a tolerance band (default ±25%).  Out-of-band wall-time
  movement is reported as a trend but does **not** fail the comparison
  unless ``--strict-wall`` asks it to; wall time is weather, series are
  law.

Library surface: :func:`first_divergence` (also adopted by
``benchmarks/perf_guard.py``), :func:`compare_series`,
:func:`compare_docs`, :func:`compare_files`, :func:`compare_dirs`.

CLI::

    python -m repro.obs.compare A.json B.json [--tolerance 0.25]
    python -m repro.obs.compare --all DIR_A DIR_B [--format json]

Exit status: 0 — no drift; 1 — drift (or, with ``--strict-wall``,
out-of-band timings); 2 — usage/IO error.
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default relative tolerance band for timing comparisons (±25%).
DEFAULT_TOLERANCE = 0.25


# ---------------------------------------------------------------------------
# Series comparison
# ---------------------------------------------------------------------------


def first_divergence(
    rows_a: Sequence[Sequence[Any]], rows_b: Sequence[Sequence[Any]]
) -> Optional[Tuple[int, Optional[int]]]:
    """The first ``(row, column)`` where two series differ, else ``None``.

    ``column`` is ``None`` when one series simply ends (length
    mismatch at ``row``) or when the differing rows have different
    lengths.  Cells are compared by equality after list-normalization,
    so JSON round-trips (tuples becoming lists) do not read as drift.
    """
    a = [list(r) for r in rows_a]
    b = [list(r) for r in rows_b]
    for k in range(min(len(a), len(b))):
        if a[k] != b[k]:
            if len(a[k]) != len(b[k]):
                return (k, None)
            for j in range(len(a[k])):
                if a[k][j] != b[k][j]:
                    return (k, j)
            return (k, None)  # unreachable; defensive
    if len(a) != len(b):
        return (min(len(a), len(b)), None)
    return None


@dataclass
class SeriesDrift:
    """The comparison verdict for one artifact pair.

    ``drifted`` covers the deterministic half only (series content,
    header, quick-mode flag, row counts); ``wall_out_of_band`` lists the
    timing names whose ratio left the tolerance band.
    """

    name: str
    drifted: bool = False
    identical_series: bool = True
    row_counts: Tuple[int, int] = (0, 0)
    divergence: Optional[Dict[str, Any]] = None
    header_drift: Optional[Dict[str, Any]] = None
    quick_mismatch: Optional[Dict[str, Any]] = None
    timings: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    wall_out_of_band: List[str] = field(default_factory=list)
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "drifted": self.drifted,
            "identical_series": self.identical_series,
            "row_counts": list(self.row_counts),
        }
        if self.divergence is not None:
            out["divergence"] = self.divergence
        if self.header_drift is not None:
            out["header_drift"] = self.header_drift
        if self.quick_mismatch is not None:
            out["quick_mismatch"] = self.quick_mismatch
        if self.timings:
            out["timings"] = self.timings
        if self.wall_out_of_band:
            out["wall_out_of_band"] = sorted(self.wall_out_of_band)
        if self.error is not None:
            out["error"] = self.error
        return out


def compare_series(
    name: str,
    rows_a: Sequence[Sequence[Any]],
    rows_b: Sequence[Sequence[Any]],
    header: Optional[Sequence[Any]] = None,
) -> SeriesDrift:
    """Compare two raw row lists (no artifact wrapper)."""
    drift = SeriesDrift(name=name, row_counts=(len(rows_a), len(rows_b)))
    where = first_divergence(rows_a, rows_b)
    if where is not None:
        row, col = where
        drift.drifted = True
        drift.identical_series = False
        drift.divergence = {
            "row": row,
            "column": col,
            "a": list(rows_a[row]) if row < len(rows_a) else None,
            "b": list(rows_b[row]) if row < len(rows_b) else None,
        }
        if header is not None and col is not None and col < len(header):
            drift.divergence["column_name"] = header[col]
    return drift


def _band_check(
    drift: SeriesDrift,
    timings_a: Dict[str, Any],
    timings_b: Dict[str, Any],
    tolerance: float,
) -> None:
    for key in sorted(set(timings_a) | set(timings_b)):
        a = timings_a.get(key)
        b = timings_b.get(key)
        entry: Dict[str, Any] = {"a": a, "b": b}
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            entry["delta_s"] = round(b - a, 9)
            ratio = b / a if a > 0 else (1.0 if b == 0 else float("inf"))
            entry["ratio"] = round(ratio, 6) if ratio != float("inf") else None
            in_band = (1.0 - tolerance) <= ratio <= (1.0 + tolerance)
            entry["within_band"] = in_band
            if not in_band:
                drift.wall_out_of_band.append(key)
        else:
            entry["within_band"] = None  # present on one side only
        drift.timings[key] = entry


def compare_docs(
    doc_a: Dict[str, Any],
    doc_b: Dict[str, Any],
    name: Optional[str] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> SeriesDrift:
    """Compare two parsed ``repro.bench/1`` artifact documents.

    Deterministic half (series rows, header, ``quick`` flag, bench id)
    → exact; ``timings`` → tolerance band.  ``environment`` and
    ``created_unix`` are ignored entirely: they identify the measuring
    machine and moment, not the measurement.
    """
    label = name or str(doc_a.get("bench_id") or doc_b.get("bench_id") or "?")
    series_a = doc_a.get("series") or {}
    series_b = doc_b.get("series") or {}
    drift = compare_series(
        label,
        series_a.get("rows") or [],
        series_b.get("rows") or [],
        header=series_a.get("header"),
    )
    if doc_a.get("bench_id") != doc_b.get("bench_id"):
        drift.drifted = True
        drift.error = (
            f"bench ids differ: {doc_a.get('bench_id')!r} vs "
            f"{doc_b.get('bench_id')!r}"
        )
    if (series_a.get("header") or None) != (series_b.get("header") or None):
        drift.drifted = True
        drift.header_drift = {
            "a": series_a.get("header"),
            "b": series_b.get("header"),
        }
    if bool(doc_a.get("quick")) != bool(doc_b.get("quick")):
        # Quick-mode series are legitimately different sweeps; comparing
        # them is a category error worth naming, not a silent diff.
        drift.drifted = True
        drift.quick_mismatch = {
            "a": bool(doc_a.get("quick")),
            "b": bool(doc_b.get("quick")),
        }
    _band_check(
        drift,
        doc_a.get("timings") or {},
        doc_b.get("timings") or {},
        tolerance,
    )
    return drift


def compare_files(
    path_a: str,
    path_b: str,
    tolerance: float = DEFAULT_TOLERANCE,
) -> SeriesDrift:
    """Compare two artifact files; unreadable input is a drift verdict
    with ``error`` set, not an exception."""
    name = os.path.basename(path_b)
    docs = []
    for path in (path_a, path_b):
        try:
            with open(path, "r", encoding="utf-8") as fp:
                docs.append(json.load(fp))
        except (OSError, json.JSONDecodeError) as exc:
            drift = SeriesDrift(name=name, drifted=True)
            drift.identical_series = False
            drift.error = f"unreadable artifact {path}: {exc}"
            return drift
    return compare_docs(docs[0], docs[1], name=name, tolerance=tolerance)


def compare_dirs(
    dir_a: str,
    dir_b: str,
    pattern_prefix: str = "BENCH_",
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[SeriesDrift]:
    """Pairwise-compare every ``BENCH_*.json`` present in either
    directory (sorted by filename); a file missing on one side is drift."""
    def listing(d: str) -> Dict[str, str]:
        try:
            names = os.listdir(d)
        except OSError:
            return {}
        return {
            n: os.path.join(d, n)
            for n in names
            if n.startswith(pattern_prefix) and n.endswith(".json")
        }

    files_a = listing(dir_a)
    files_b = listing(dir_b)
    out: List[SeriesDrift] = []
    for name in sorted(set(files_a) | set(files_b)):
        if name not in files_a or name not in files_b:
            side = dir_a if name not in files_a else dir_b
            drift = SeriesDrift(name=name, drifted=True)
            drift.identical_series = False
            drift.error = f"missing from {side}"
            out.append(drift)
            continue
        out.append(
            compare_files(files_a[name], files_b[name], tolerance=tolerance)
        )
    return out


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def format_drift(drift: SeriesDrift) -> str:
    """One human-readable block per compared pair."""
    lines: List[str] = []
    verdict = "DRIFT" if drift.drifted else "ok"
    lines.append(f"[{drift.name}] {verdict}")
    if drift.error:
        lines.append(f"  error: {drift.error}")
    if drift.divergence is not None:
        d = drift.divergence
        where = f"row {d['row']}"
        if d.get("column") is not None:
            where += f", column {d['column']}"
            if "column_name" in d:
                where += f" ({d['column_name']})"
        lines.append(f"  first divergence at {where}")
        lines.append(f"    a: {d['a']}")
        lines.append(f"    b: {d['b']}")
    if drift.row_counts[0] != drift.row_counts[1]:
        lines.append(
            f"  row counts: {drift.row_counts[0]} vs {drift.row_counts[1]}"
        )
    if drift.header_drift is not None:
        lines.append(
            f"  header drift: {drift.header_drift['a']} vs "
            f"{drift.header_drift['b']}"
        )
    if drift.quick_mismatch is not None:
        lines.append(
            f"  quick-mode mismatch: {drift.quick_mismatch['a']} vs "
            f"{drift.quick_mismatch['b']} (different sweeps)"
        )
    for key in sorted(drift.timings):
        entry = drift.timings[key]
        if entry.get("within_band") is False:
            lines.append(
                f"  timing {key}: {entry['a']:.4f}s -> {entry['b']:.4f}s "
                f"({entry['ratio']:.2f}x, outside band)"
            )
        elif entry.get("within_band") is True:
            lines.append(
                f"  timing {key}: {entry['a']:.4f}s -> {entry['b']:.4f}s "
                f"({entry['ratio']:.2f}x)"
            )
    return "\n".join(lines)


def summarize(results: List[SeriesDrift]) -> Dict[str, Any]:
    """The JSON report the ``--format json`` CLI mode prints."""
    return {
        "compared": len(results),
        "drifted": sorted(r.name for r in results if r.drifted),
        "wall_out_of_band": sorted(
            r.name for r in results if r.wall_out_of_band
        ),
        "results": [r.to_dict() for r in results],
    }


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    fmt = "text"
    tolerance = DEFAULT_TOLERANCE
    strict_wall = False
    all_mode = False
    rest: List[str] = []
    k = 0
    while k < len(args):
        arg = args[k]
        if arg == "--all":
            all_mode = True
        elif arg == "--strict-wall":
            strict_wall = True
        elif arg == "--format":
            if k + 1 >= len(args):
                print("error: --format needs a value", file=sys.stderr)
                return 2
            fmt = args[k + 1]
            k += 1
        elif arg.startswith("--format="):
            fmt = arg.split("=", 1)[1]
        elif arg == "--tolerance":
            if k + 1 >= len(args):
                print("error: --tolerance needs a value", file=sys.stderr)
                return 2
            tolerance = float(args[k + 1])
            k += 1
        elif arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg.startswith("-"):
            print(f"error: unknown option {arg}", file=sys.stderr)
            return 2
        else:
            rest.append(arg)
        k += 1
    if fmt not in ("text", "json"):
        print(f"error: unknown format {fmt!r}", file=sys.stderr)
        return 2
    if len(rest) != 2:
        print(
            "usage: python -m repro.obs.compare A.json B.json\n"
            "       python -m repro.obs.compare --all DIR_A DIR_B\n"
            "options: [--tolerance 0.25] [--strict-wall] "
            "[--format text|json]",
            file=sys.stderr,
        )
        return 2

    if all_mode:
        results = compare_dirs(rest[0], rest[1], tolerance=tolerance)
        if not results:
            print(
                f"error: no BENCH_*.json found under {rest[0]} or {rest[1]}",
                file=sys.stderr,
            )
            return 2
    else:
        results = [compare_files(rest[0], rest[1], tolerance=tolerance)]

    if fmt == "json":
        print(json.dumps(summarize(results), indent=2, sort_keys=True))
    else:
        for result in results:
            print(format_drift(result))
        drifted = [r.name for r in results if r.drifted]
        out_of_band = [r.name for r in results if r.wall_out_of_band]
        if drifted:
            print(f"drift in {len(drifted)}/{len(results)}: {drifted}")
        else:
            print(f"no series drift across {len(results)} artifact(s)")
        if out_of_band:
            print(f"wall-clock outside ±{tolerance:.0%} band: {out_of_band}")

    failed = any(r.drifted for r in results) or (
        strict_wall and any(r.wall_out_of_band for r in results)
    )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
